#include "service/client.hpp"

namespace fbc::service {

BundleClient::BundleClient(std::uint16_t port, bool legacy_wire)
    : fd_(connect_loopback(port)), port_(port), legacy_wire_(legacy_wire) {}

void BundleClient::reconnect() {
  fd_.reset();
  reader_ = FrameReader{};  // discard any half-read frame from before
  fd_ = connect_loopback(port_);
}

std::optional<Message> BundleClient::read_reply() {
  return legacy_wire_ ? recv_message(fd_.get()) : reader_.next(fd_.get());
}

Message BundleClient::round_trip(const Message& request) {
  if (!fd_.valid()) throw NetError("client is disconnected");
  if (!send_message(fd_.get(), request))
    throw NetError("daemon closed the connection");
  std::optional<Message> reply = read_reply();
  if (!reply.has_value()) throw NetError("daemon closed the connection");
  return std::move(*reply);
}

AcquireResult BundleClient::acquire(const std::vector<FileId>& files) {
  const std::uint64_t cookie = next_cookie_++;
  const Message reply = round_trip(AcquireRequestMsg{cookie, files});
  const auto* msg = std::get_if<AcquireReplyMsg>(&reply);
  if (msg == nullptr)
    throw ProtocolError(std::string("expected AcquireReply, got ") +
                        to_string(message_type(reply)));
  if (msg->cookie != cookie)
    throw ProtocolError("acquire reply cookie mismatch");
  AcquireResult result;
  result.status = msg->status;
  result.lease = msg->lease;
  result.request_hit = msg->request_hit != 0;
  result.retry_after_ms = msg->retry_after_ms;
  result.retries = msg->retries;
  return result;
}

AcquireResult BundleClient::release_acquire(LeaseId lease,
                                            const std::vector<FileId>& files,
                                            bool* released) {
  if (!fd_.valid()) throw NetError("client is disconnected");
  const std::uint64_t cookie = next_cookie_++;
  // Both frames in one buffer, one send: a single packet and a single
  // daemon wake-up. Replies come back in request order per the strict
  // sequential connection discipline.
  send_buf_.clear();
  encode_frame(ReleaseRequestMsg{lease}, &send_buf_);
  encode_frame(AcquireRequestMsg{cookie, files}, &send_buf_);
  if (!write_full(fd_.get(), send_buf_.data(), send_buf_.size()))
    throw NetError("daemon closed the connection");
  std::optional<Message> release_reply = read_reply();
  if (!release_reply.has_value())
    throw NetError("daemon closed the connection");
  const auto* rel = std::get_if<ReleaseReplyMsg>(&*release_reply);
  if (rel == nullptr)
    throw ProtocolError(std::string("expected ReleaseReply, got ") +
                        to_string(message_type(*release_reply)));
  if (released != nullptr) *released = rel->ok != 0;
  std::optional<Message> acquire_reply = read_reply();
  if (!acquire_reply.has_value())
    throw NetError("daemon closed the connection");
  const auto* acq = std::get_if<AcquireReplyMsg>(&*acquire_reply);
  if (acq == nullptr)
    throw ProtocolError(std::string("expected AcquireReply, got ") +
                        to_string(message_type(*acquire_reply)));
  if (acq->cookie != cookie)
    throw ProtocolError("acquire reply cookie mismatch");
  AcquireResult result;
  result.status = acq->status;
  result.lease = acq->lease;
  result.request_hit = acq->request_hit != 0;
  result.retry_after_ms = acq->retry_after_ms;
  result.retries = acq->retries;
  return result;
}

bool BundleClient::release(LeaseId lease) {
  const Message reply = round_trip(ReleaseRequestMsg{lease});
  const auto* msg = std::get_if<ReleaseReplyMsg>(&reply);
  if (msg == nullptr)
    throw ProtocolError(std::string("expected ReleaseReply, got ") +
                        to_string(message_type(reply)));
  return msg->ok != 0;
}

ServiceStats BundleClient::stats() {
  const Message reply = round_trip(StatsRequestMsg{});
  const auto* msg = std::get_if<StatsReplyMsg>(&reply);
  if (msg == nullptr)
    throw ProtocolError(std::string("expected StatsReply, got ") +
                        to_string(message_type(reply)));
  return msg->stats;
}

MetricsSnapshot BundleClient::metrics() {
  Message reply = round_trip(MetricsRequestMsg{});
  auto* msg = std::get_if<MetricsReplyMsg>(&reply);
  if (msg == nullptr)
    throw ProtocolError(std::string("expected MetricsReply, got ") +
                        to_string(message_type(reply)));
  return std::move(msg->metrics);
}

HelloReplyMsg BundleClient::hello() {
  const Message reply = round_trip(HelloRequestMsg{});
  const auto* msg = std::get_if<HelloReplyMsg>(&reply);
  if (msg == nullptr)
    throw ProtocolError(std::string("expected HelloReply, got ") +
                        to_string(message_type(reply)));
  return *msg;
}

}  // namespace fbc::service
