#include "service/client.hpp"

namespace fbc::service {

BundleClient::BundleClient(std::uint16_t port)
    : fd_(connect_loopback(port)) {}

Message BundleClient::round_trip(const Message& request) {
  if (!fd_.valid()) throw NetError("client is disconnected");
  if (!send_message(fd_.get(), request))
    throw NetError("daemon closed the connection");
  std::optional<Message> reply = recv_message(fd_.get());
  if (!reply.has_value()) throw NetError("daemon closed the connection");
  return std::move(*reply);
}

AcquireResult BundleClient::acquire(const std::vector<FileId>& files) {
  const std::uint64_t cookie = next_cookie_++;
  const Message reply = round_trip(AcquireRequestMsg{cookie, files});
  const auto* msg = std::get_if<AcquireReplyMsg>(&reply);
  if (msg == nullptr)
    throw ProtocolError(std::string("expected AcquireReply, got ") +
                        to_string(message_type(reply)));
  if (msg->cookie != cookie)
    throw ProtocolError("acquire reply cookie mismatch");
  AcquireResult result;
  result.status = msg->status;
  result.lease = msg->lease;
  result.request_hit = msg->request_hit != 0;
  result.retry_after_ms = msg->retry_after_ms;
  result.retries = msg->retries;
  return result;
}

bool BundleClient::release(LeaseId lease) {
  const Message reply = round_trip(ReleaseRequestMsg{lease});
  const auto* msg = std::get_if<ReleaseReplyMsg>(&reply);
  if (msg == nullptr)
    throw ProtocolError(std::string("expected ReleaseReply, got ") +
                        to_string(message_type(reply)));
  return msg->ok != 0;
}

ServiceStats BundleClient::stats() {
  const Message reply = round_trip(StatsRequestMsg{});
  const auto* msg = std::get_if<StatsReplyMsg>(&reply);
  if (msg == nullptr)
    throw ProtocolError(std::string("expected StatsReply, got ") +
                        to_string(message_type(reply)));
  return msg->stats;
}

MetricsSnapshot BundleClient::metrics() {
  Message reply = round_trip(MetricsRequestMsg{});
  auto* msg = std::get_if<MetricsReplyMsg>(&reply);
  if (msg == nullptr)
    throw ProtocolError(std::string("expected MetricsReply, got ") +
                        to_string(message_type(reply)));
  return std::move(msg->metrics);
}

}  // namespace fbc::service
