#include "service/daemon.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <utility>
#include <vector>

#include "util/log.hpp"

namespace fbc::service {

BundleDaemon::BundleDaemon(ServingEndpoint& endpoint, std::uint16_t port,
                           std::size_t workers)
    : endpoint_(endpoint), pool_(std::make_unique<ThreadPool>(workers)) {
  // Bind in the body: listen_loopback writes port_, which a member
  // initializer for listen_fd_ would race with port_'s own default init.
  listen_fd_ = listen_loopback(port, &port_);
  acceptor_ = std::thread([this] { accept_loop(); });
}

BundleDaemon::~BundleDaemon() { stop(); }

void BundleDaemon::stop() {
  if (stopping_.exchange(true)) return;
  // Order matters: wake queued acquires first so pool workers can finish,
  // then unblock workers parked in recv, then unblock the acceptor, then
  // join everything. pool_ destruction drains the remaining tasks.
  endpoint_.close();
  {
    std::lock_guard<OrderedMutex> lock(conn_mu_);
    // fbclint:ignore(L005) -- shutdown order across fds is irrelevant.
    for (const auto& [fd, unused] : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  listen_fd_.shutdown_both();
  if (acceptor_.joinable()) acceptor_.join();
  pool_.reset();
  listen_fd_.reset();
}

void BundleDaemon::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;  // EINTR / transient accept failure
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    set_nodelay(fd);  // replies pipeline; Nagle would stall the 2nd frame
    // try_submit: the pool may be shutting down under us; then we just
    // close the connection instead of crashing the acceptor.
    auto queued = pool_->try_submit([this, fd] { serve_connection(fd); });
    if (!queued.has_value()) ::close(fd);
  }
}

void BundleDaemon::serve_connection(int raw_fd) {
  UniqueFd fd(raw_fd);
  {
    std::lock_guard<OrderedMutex> lock(conn_mu_);
    live_fds_.emplace(fd.get(), true);
  }
  // Leases granted over this connection and not yet released by it.
  std::vector<LeaseId> held;

  const auto handle = [&](Message& message) -> Message {
    if (auto* acq = std::get_if<AcquireRequestMsg>(&message)) {
      const Request request(std::move(acq->files));
      const AcquireResult r = endpoint_.acquire(request);
      if (r.status == AcquireStatus::Ok) held.push_back(r.lease);
      return AcquireReplyMsg{acq->cookie,    r.status,
                             r.lease,        r.retry_after_ms,
                             r.retries,      r.request_hit};
    }
    if (auto* rel = std::get_if<ReleaseRequestMsg>(&message)) {
      const bool ok = endpoint_.release(rel->lease);
      if (ok) std::erase(held, rel->lease);
      return ReleaseReplyMsg{ok};
    }
    if (std::holds_alternative<StatsRequestMsg>(message))
      return StatsReplyMsg{endpoint_.stats()};
    if (std::holds_alternative<MetricsRequestMsg>(message))
      return MetricsReplyMsg{endpoint_.metrics()};
    if (std::holds_alternative<HelloRequestMsg>(message)) {
      const EndpointInfo info = endpoint_.info();
      return HelloReplyMsg{info.role, info.shard_id, info.shard_count,
                           info.shards_down};
    }
    // Reply types are server-to-client only.
    throw ProtocolError(std::string("unexpected client message ") +
                        to_string(message_type(message)));
  };

  // Baseline transport for the serving bench: unbuffered one-frame
  // reads, one send per reply, no burst draining.
  const auto serve_legacy = [&] {
    for (;;) {
      std::optional<Message> message = recv_message(fd.get());
      if (!message.has_value()) break;  // client hung up cleanly
      if (!send_message(fd.get(), handle(*message))) break;
    }
  };

  // Batched transport: handle the message in hand plus every burst-mate
  // the last recv already pulled into the reader (pipelined clients
  // write several frames per burst in one send), then flush all replies
  // in one send -- one packet and one client wake-up per burst instead
  // of one per request. The drain is syscall-free: with one outstanding
  // burst per connection, probing the socket after the last frame would
  // always come back empty.
  const auto serve_batched = [&] {
    FrameReader reader;
    std::vector<std::uint8_t> replies;
    std::optional<Message> message = reader.next(fd.get());
    while (message.has_value()) {
      replies.clear();
      Message in_hand = std::move(*message);
      do {
        encode_frame(handle(in_hand), &replies);
      } while (reader.buffered_next(&in_hand));
      if (!write_full(fd.get(), replies.data(), replies.size())) break;
      message = reader.next(fd.get());
    }
  };

  try {
    if (endpoint_.legacy_wire()) {
      serve_legacy();
    } else {
      serve_batched();
    }
  } catch (const std::exception& e) {
    FBC_LOG(Warn) << "fbcd: dropping connection: " << e.what();
  }

  // A connection that dies holding leases must not leave its bundles
  // pinned forever -- that would wedge every other client's admissions.
  for (LeaseId lease : held) {
    if (endpoint_.release(lease)) {
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::lock_guard<OrderedMutex> lock(conn_mu_);
  live_fds_.erase(fd.get());
}

}  // namespace fbc::service
