// ServingEndpoint: the transport-facing interface of anything that can
// answer the wire protocol's request messages.
//
// BundleDaemon serves *an endpoint*, not a BundleServer: the same acceptor
// and frame loop front either a single shard (fbcd) or a ClusterRouter
// fanning out to N shards (fbcgrid). Everything the daemon needs --
// acquire/release forwarding, stats/metrics snapshots, identity for
// HelloRequest, and close-on-shutdown -- goes through this interface, so
// acquire/release frames are forwardable to whatever sits behind it.
#pragma once

#include <cstdint>

#include "cache/types.hpp"
#include "service/protocol.hpp"

namespace fbc::service {

/// Result of a (possibly forwarded) acquire call.
struct AcquireResult {
  AcquireStatus status = AcquireStatus::Ok;
  LeaseId lease = 0;
  bool request_hit = false;
  std::uint32_t retry_after_ms = 0;
  std::uint32_t retries = 0;
};

/// Identity reported in a HelloReply (see protocol.hpp). `shards_down`
/// is the router's live count of shards currently marked down (0 for a
/// standalone shard) -- the wire-visible health signal fbcctl surfaces.
struct EndpointInfo {
  EndpointRole role = EndpointRole::Shard;
  std::uint32_t shard_id = 0;
  std::uint32_t shard_count = 1;
  std::uint32_t shards_down = 0;
};

/// Abstract serving endpoint (see file comment). Implementations must be
/// thread-safe: the daemon calls from one thread per connection.
class ServingEndpoint {
 public:
  virtual ~ServingEndpoint() = default;

  /// Blocks until the bundle is leased or the acquire fails; `request`
  /// must stay alive for the duration of the call.
  virtual AcquireResult acquire(const Request& request) = 0;

  /// Returns false for an unknown (or already released) lease.
  virtual bool release(LeaseId lease) = 0;

  [[nodiscard]] virtual ServiceStats stats() const = 0;

  [[nodiscard]] virtual MetricsSnapshot metrics() const = 0;

  /// Identity for HelloReply frames.
  [[nodiscard]] virtual EndpointInfo info() const = 0;

  /// True when connections should use the serial one-frame-per-recv
  /// transport instead of the buffered FrameReader.
  [[nodiscard]] virtual bool legacy_wire() const = 0;

  /// Wakes every queued waiter with Closed and rejects future acquires;
  /// release/stats keep working so draining clients can finish.
  virtual void close() = 0;
};

}  // namespace fbc::service
