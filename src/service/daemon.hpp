// BundleDaemon: serves the wire protocol over loopback TCP on top of a
// ServingEndpoint (a single BundleServer, or a ClusterRouter fanning out
// to N shards -- the daemon itself is endpoint-agnostic).
//
// One acceptor thread hands each connection to a util/thread_pool worker,
// so up to `workers` clients are served concurrently; further connections
// queue inside the pool. Each connection is a strict request/reply loop:
// AcquireRequest -> AcquireReply, ReleaseRequest -> ReleaseReply,
// StatsRequest -> StatsReply. Leases granted over a connection that
// disconnects without releasing them are auto-released, so a crashed
// client can never wedge the cache with orphaned pins.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "service/endpoint.hpp"
#include "service/net.hpp"
#include "util/ordered_mutex.hpp"
#include "util/thread_pool.hpp"

namespace fbc::service {

/// TCP front-end for one ServingEndpoint.
class BundleDaemon {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  /// `endpoint` must outlive the daemon. `workers` bounds concurrently
  /// served connections.
  BundleDaemon(ServingEndpoint& endpoint, std::uint16_t port,
               std::size_t workers);

  /// Stops accepting, closes the server and every live connection, joins.
  ~BundleDaemon();

  BundleDaemon(const BundleDaemon&) = delete;
  BundleDaemon& operator=(const BundleDaemon&) = delete;

  /// The bound port (useful with port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Total connections ever accepted.
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }

  /// Leases auto-released because their connection died holding them.
  [[nodiscard]] std::uint64_t leases_reclaimed() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  /// Initiates shutdown (idempotent; the destructor calls it too).
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  ServingEndpoint& endpoint_;
  UniqueFd listen_fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> reclaimed_{0};

  // Live connection fds, so stop() can shutdown() them and unblock the
  // workers parked in recv. Held only over map ops and the (non-blocking)
  // shutdown() syscall, never across server_ calls.
  // fbc:lock-level(70)
  // fbc:guards(live_fds_)
  OrderedMutex conn_mu_{70, "BundleDaemon::conn_mu_"};
  std::unordered_map<int, bool> live_fds_;

  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
};

}  // namespace fbc::service
