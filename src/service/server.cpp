#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "core/registry.hpp"
#include "util/log.hpp"

namespace fbc::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Bounded exponential backoff: base * 2^(attempt-1), capped at 8x base.
std::chrono::milliseconds backoff_for(std::uint32_t base_ms,
                                      std::uint32_t attempt) {
  const std::uint32_t shift = std::min<std::uint32_t>(attempt - 1, 3);
  return std::chrono::milliseconds(
      static_cast<std::uint64_t>(base_ms) << shift);
}

/// Elapsed microseconds between two steady_clock instants, clamped to 0.
std::uint64_t us_between(Clock::time_point from, Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

AdmitOrder parse_admit_order(const std::string& name) {
  if (name == "fifo") return AdmitOrder::Fifo;
  if (name == "value") return AdmitOrder::ValueDensity;
  throw std::invalid_argument("unknown admit order '" + name +
                              "' (expected fifo|value)");
}

BundleServer::BundleServer(const ServiceConfig& config,
                           const StorageBackend& mss)
    : config_(config),
      mss_(&mss),
      transfers_{.max_parallel = config.transfer_streams},
      cache_(config.cache_bytes, mss.catalog()),
      leases_(config.lease_shards),
      fail_rng_(config.seed ^ 0xf3f3f3f3f3f3f3f3ULL),
      spans_(config.span_capacity),
      acquire_ok_slot_(counters_.slot("acquire.ok")),
      release_ok_slot_(counters_.slot("release.ok")),
      release_unknown_slot_(counters_.slot("release.unknown")),
      transfers_slot_(counters_.slot("fetch.transfers")),
      coalesced_slot_(counters_.slot("acquire.coalesced")) {
  if (config_.max_queue == 0)
    throw std::invalid_argument("BundleServer: max_queue must be >= 1");
  if (config_.admission_batch == 0)
    throw std::invalid_argument("BundleServer: admission_batch must be >= 1");
  PolicyContext context;
  context.catalog = &mss.catalog();
  context.seed = config.seed;
  context.select_engine = config_.engine;
  policy_ = config_.policy_factory
                ? config_.policy_factory(config_.policy, context)
                : make_policy(config_.policy, context);
}

BundleServer::~BundleServer() { close(); }

void BundleServer::close() {
  std::lock_guard<OrderedMutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

void BundleServer::set_admission_paused(bool paused) {
  std::lock_guard<OrderedMutex> lock(mu_);
  paused_ = paused;
  cv_.notify_all();
}

bool BundleServer::admission_paused() const {
  std::lock_guard<OrderedMutex> lock(mu_);
  return paused_;
}

std::size_t BundleServer::choose_locked() const {
  if (config_.order == AdmitOrder::Fifo || queue_.size() <= 1) return 0;
  // ValueDensity: the request with the highest already-resident byte
  // fraction is the cheapest to admit; FIFO breaks ties (strictly-better
  // only), so equal-density requests cannot starve each other.
  std::size_t best = 0;
  double best_density = -1.0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Waiter& w = *queue_[i];
    Bytes resident = 0;
    for (FileId id : w.request->files) {
      if (cache_.contains(id)) resident += mss_->catalog().size_of(id);
    }
    const double density =
        w.bundle_bytes == 0
            ? 1.0
            : static_cast<double>(resident) /
                  static_cast<double>(w.bundle_bytes);
    if (density > best_density) {
      best = i;
      best_density = density;
    }
  }
  return best;
}

bool BundleServer::fits_locked(const Request& request) const {
  const Bytes missing = cache_.missing_bytes(request);
  if (missing <= cache_.free_bytes()) return true;
  Bytes evictable = 0;
  for (FileId id : cache_.resident_files()) {
    if (!cache_.pinned(id) && !request.contains(id))
      evictable += mss_->catalog().size_of(id);
  }
  return missing <= cache_.free_bytes() + evictable;
}

LeaseId BundleServer::admit_locked(const Request& request, Bytes bundle_bytes,
                                   bool* request_hit, double* stage_s,
                                   std::vector<FileId>* fetched,
                                   Bytes* missing_bytes) {
  policy_->on_job_arrival(request, cache_);
  std::vector<FileId> missing = cache_.missing_files(request);
  *missing_bytes = mss_->catalog().bundle_bytes(missing);
  metrics_.record_job(bundle_bytes, *missing_bytes, request.size(),
                      request.size() - missing.size());
  *stage_s = 0.0;
  if (missing.empty()) {
    *request_hit = true;
    policy_->on_request_hit(request, cache_);
  } else {
    *request_hit = false;
    if (cache_.free_bytes() < *missing_bytes) {
      const Bytes needed = *missing_bytes - cache_.free_bytes();
      for (FileId victim : policy_->select_victims(request, needed, cache_)) {
        metrics_.record_eviction(mss_->catalog().size_of(victim));
        cache_.evict(victim);  // throws on a leased (pinned) file
        policy_->on_file_evicted(victim);
      }
      if (cache_.free_bytes() < *missing_bytes)
        throw std::runtime_error(
            "BundleServer: policy freed insufficient space");
    }
    for (FileId id : missing) cache_.insert(id);
    policy_->on_files_loaded(request, missing, cache_);
    *stage_s = transfers_.stage_seconds(missing, *mss_);
    // Register the transfer as in-flight before anyone else can be
    // granted an overlapping bundle: begin_fetch under mu_ closes the
    // window between "reserved (files look resident)" and "in-flight set
    // updated". The coalescer mutex is a leaf, so mu_ -> coalescer is the
    // only order that ever occurs.
    if (config_.coalesce) coalescer_.begin_fetch(missing);
  }
  const LeaseId lease = leases_.grant(request);
  for (FileId id : request.files) cache_.pin(id);
  *fetched = std::move(missing);
  return lease;
}

std::size_t BundleServer::drain_locked() {
  if (paused_ || closed_) return 0;
  std::size_t admitted = 0;
  while (admitted < config_.admission_batch && !queue_.empty()) {
    const std::size_t idx = choose_locked();
    Waiter& head = *queue_[idx];
    // A head sleeping off a failed transfer attempt blocks the line, just
    // as it does in the serial server (where it holds its place in queue_
    // across the backoff sleep).
    if (head.state == Waiter::State::Backoff) break;
    if (!fits_locked(*head.request)) break;
    // The simulated MSS transfer draw for this attempt happens *before*
    // the reserve, exactly as in the serial path, so a failed attempt
    // leaves the cache untouched. Only the chosen head ever draws, which
    // keeps the fail_rng_ sequence identical across batch sizes.
    if (config_.transfer_fail_prob > 0.0 &&
        fail_rng_.bernoulli(config_.transfer_fail_prob)) {
      ++head.failed_attempts;
      head.state = Waiter::State::Backoff;
      cv_.notify_all();
      break;  // head-of-line: nothing behind it admits this pass
    }
    head.t_admit = Clock::now();
    queue_.erase(queue_.begin() + idx);
    metrics_.record_queue_wait(
        static_cast<double>(admissions_ - head.admissions_at_enqueue));
    head.lease = admit_locked(*head.request, head.bundle_bytes,
                              &head.request_hit, &head.stage_s, &head.fetched,
                              &head.missing_bytes);
    ++admissions_;
    head.t_reserved = Clock::now();
    grant_times_.emplace(head.lease, head.t_reserved);
    head.state = Waiter::State::Admitted;
    ++admitted;
  }
  if (admitted > 0) {
    cv_.notify_all();
    std::lock_guard<OrderedMutex> obs_lock(obs_mu_);
    batch_size_.record(admitted);
  }
  return admitted;
}

AcquireResult BundleServer::acquire(const Request& request) {
  const auto t0 = Clock::now();
  obs::ServingSpan span;
  span.request_id = request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  span.files = static_cast<std::uint32_t>(request.size());

  AcquireResult result;
  const FileCatalog& catalog = mss_->catalog();
  const bool valid =
      !request.empty() &&
      std::all_of(request.files.begin(), request.files.end(),
                  [&](FileId id) { return catalog.valid(id); });

  std::unique_lock<OrderedMutex> lock(mu_);
  if (closed_) {
    result.status = AcquireStatus::Closed;
    span.total_us = us_between(t0, Clock::now());
    finish_span(span, result.status, "acquire.closed");
    return result;
  }
  if (!valid) {
    ++invalid_;
    result.status = AcquireStatus::InvalidRequest;
    span.total_us = us_between(t0, Clock::now());
    finish_span(span, result.status, "acquire.invalid");
    return result;
  }
  const Bytes bundle_bytes = catalog.request_bytes(request);
  span.bundle_bytes = bundle_bytes;
  if (bundle_bytes > cache_.capacity()) {
    metrics_.record_unserviceable();
    result.status = AcquireStatus::Unserviceable;
    span.total_us = us_between(t0, Clock::now());
    finish_span(span, result.status, "acquire.unserviceable");
    return result;
  }
  if (queue_.size() >= config_.max_queue) {
    ++rejected_full_;
    result.status = AcquireStatus::QueueFull;
    // Load-proportional hint: deeper queue, longer suggested wait. The
    // product is computed in 64 bits and saturated at the config cap (and
    // at UINT32_MAX, the wire field's range) -- a large backoff times a
    // deep queue must never wrap into a tiny hint (a retry storm).
    const std::uint64_t hint =
        std::max<std::uint64_t>(1, config_.retry_backoff_ms) *
        (1 + static_cast<std::uint64_t>(queue_.size()));
    const std::uint64_t cap =
        config_.retry_after_cap_ms == 0
            ? std::numeric_limits<std::uint32_t>::max()
            : config_.retry_after_cap_ms;
    result.retry_after_ms = static_cast<std::uint32_t>(std::min(hint, cap));
    span.queue_depth = static_cast<std::uint32_t>(queue_.size());
    span.total_us = us_between(t0, Clock::now());
    finish_span(span, result.status, "acquire.queue_full");
    return result;
  }
  span.queue_depth = static_cast<std::uint32_t>(queue_.size());

  Waiter waiter;
  waiter.request = &request;
  waiter.bundle_bytes = bundle_bytes;
  waiter.admissions_at_enqueue = admissions_;
  queue_.push_back(&waiter);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.timeout_ms);
  auto leave_queue = [&] {
    queue_.erase(std::find(queue_.begin(), queue_.end(), &waiter));
    cv_.notify_all();
  };

  // Admission loop. Whichever waiter thread holds mu_ drains the queue
  // (drain_locked) for everyone, so this thread may be admitted while
  // asleep in cv_.wait -- after every wake the *state* decides, never the
  // wait's own return reason (a timeout that raced an admission must
  // still take the grant: the lease already exists).
  for (;;) {
    if (waiter.state == Waiter::State::Admitted) break;
    if (closed_) {
      leave_queue();
      result.status = AcquireStatus::Closed;
      span.queue_us = us_between(t0, Clock::now());
      span.total_us = span.queue_us;
      finish_span(span, result.status, "acquire.closed");
      return result;
    }
    if (waiter.state == Waiter::State::Backoff) {
      // A drain pass chose this waiter and its transfer draw failed.
      if (waiter.failed_attempts > config_.max_retries) {
        ++transfer_failures_;
        leave_queue();
        result.status = AcquireStatus::TransferFailed;
        result.retries = waiter.failed_attempts - 1;
        span.queue_us = us_between(t0, Clock::now());
        span.total_us = span.queue_us;
        finish_span(span, result.status, "acquire.transfer_failed");
        return result;
      }
      ++transfer_retries_;
      const auto backoff =
          backoff_for(config_.retry_backoff_ms, waiter.failed_attempts);
      lock.unlock();  // keep our place in queue_, release mu_ for the sleep
      std::this_thread::sleep_for(backoff);
      lock.lock();
      waiter.state = Waiter::State::Queued;
      drain_locked();
      continue;
    }
    // A drain pass can change *our own* state (admit us, or mark us
    // Backoff after a failed draw) -- re-check before sleeping, or the
    // notify that happened inside drain_locked is a lost wakeup.
    if (drain_locked() > 0 || waiter.state != Waiter::State::Queued) continue;
    const auto wait_result = cv_.wait_until(lock, deadline);
    if (waiter.state != Waiter::State::Queued) continue;
    if (wait_result == std::cv_status::timeout) {
      leave_queue();
      ++timed_out_;
      result.status = AcquireStatus::TimedOut;
      result.retries = waiter.failed_attempts;
      span.queue_us = us_between(t0, Clock::now());
      span.total_us = span.queue_us;
      finish_span(span, result.status, "acquire.timed_out");
      return result;
    }
  }

  result.lease = waiter.lease;
  result.request_hit = waiter.request_hit;
  result.retries = waiter.failed_attempts;
  span.missing_bytes = waiter.missing_bytes;
  const double stage_s = waiter.stage_s;
  const std::vector<FileId> fetched = std::move(waiter.fetched);
  const auto t_admit = waiter.t_admit;
  const auto t_reserved = waiter.t_reserved;
  lock.unlock();

  // Fetch phase: the bundle is reserved (pinned), so the simulated
  // transfer can proceed without the lock while other admissions overlap.
  CoalesceWait cwait;
  if (!fetched.empty()) {
    if (config_.time_scale > 0.0 && stage_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          stage_s * config_.time_scale));
    }
    if (config_.coalesce) coalescer_.complete_fetch(fetched);
  }
  const auto t_fetched = Clock::now();
  if (config_.coalesce) {
    // Our own files are complete by now; this blocks only when another
    // admission's transfer still has part of our bundle in flight.
    cwait = coalescer_.wait_for(request.files);
  }
  result.status = AcquireStatus::Ok;

  const auto t_end = Clock::now();
  span.queue_us = us_between(t0, t_admit);
  span.reserve_us = us_between(t_admit, t_reserved);
  span.fetch_us = us_between(t_reserved, t_fetched);
  span.coalesce_us = cwait.wait_us;
  span.total_us = us_between(t0, t_end);
  {
    // Duration histograms are Ok-grants only: their counts tie to
    // stats().requests once in-flight acquires have drained.
    std::lock_guard<OrderedMutex> obs_lock(obs_mu_);
    queue_us_.record(span.queue_us);
    reserve_us_.record(span.reserve_us);
    fetch_us_.record(span.fetch_us);
    total_us_.record(span.total_us);
    queue_depth_.record(span.queue_depth);
    if (!fetched.empty()) ++*transfers_slot_;
    if (cwait.waited_files > 0) {
      ++*coalesced_slot_;
      coalesce_us_.record(span.coalesce_us);
    }
    ++*acquire_ok_slot_;
  }
  span.status = static_cast<std::uint8_t>(result.status);
  spans_.record(span);
  return result;
}

bool BundleServer::release(LeaseId lease) {
  std::unique_lock<OrderedMutex> lock(mu_);
  // take() nests the lease-shard lock under mu_ (the one place that
  // order occurs; the reverse never does). Holding mu_ across the unpin
  // keeps "lease gone" and "pins gone" atomic for audits and admissions.
  std::optional<Request> bundle = leases_.take(lease);
  if (!bundle.has_value()) {
    lock.unlock();
    std::lock_guard<OrderedMutex> obs_lock(obs_mu_);
    ++*release_unknown_slot_;
    return false;
  }
  for (FileId id : bundle->files) cache_.unpin(id);
  ++released_;
  std::uint64_t held_us = 0;
  if (auto it = grant_times_.find(lease); it != grant_times_.end()) {
    held_us = us_between(it->second, Clock::now());
    grant_times_.erase(it);
  }
  cv_.notify_all();
  lock.unlock();
  std::lock_guard<OrderedMutex> obs_lock(obs_mu_);
  ++*release_ok_slot_;
  hold_us_.record(held_us);
  return true;
}

void BundleServer::finish_span(obs::ServingSpan span, AcquireStatus status,
                               std::string_view counter) {
  span.status = static_cast<std::uint8_t>(status);
  {
    std::lock_guard<OrderedMutex> obs_lock(obs_mu_);
    counters_.add(counter);
  }
  spans_.record(span);
}

std::vector<FileId> BundleServer::resident_files() const {
  std::lock_guard<OrderedMutex> lock(mu_);
  const auto resident = cache_.resident_files();
  std::vector<FileId> files(resident.begin(), resident.end());
  std::sort(files.begin(), files.end());
  return files;
}

MetricsSnapshot BundleServer::metrics() const {
  MetricsSnapshot m;
  m.stats = stats();
  std::lock_guard<OrderedMutex> obs_lock(obs_mu_);
  m.counters = counters_.snapshot();
  // Names must stay lexicographically sorted: the wire encoder enforces
  // strictly increasing histogram names (canonical frame form).
  m.histograms.push_back({"acquire.coalesce_us", coalesce_us_});
  m.histograms.push_back({"acquire.fetch_us", fetch_us_});
  m.histograms.push_back({"acquire.queue_depth", queue_depth_});
  m.histograms.push_back({"acquire.queue_us", queue_us_});
  m.histograms.push_back({"acquire.reserve_us", reserve_us_});
  m.histograms.push_back({"acquire.total_us", total_us_});
  m.histograms.push_back({"admit.batch_size", batch_size_});
  m.histograms.push_back({"lease.hold_us", hold_us_});
  return m;
}

ServiceStats BundleServer::stats() const {
  std::lock_guard<OrderedMutex> lock(mu_);
  ServiceStats s;
  s.requests = metrics_.jobs();
  s.request_hits = metrics_.request_hits();
  s.rejected_full = rejected_full_;
  s.timed_out = timed_out_;
  s.unserviceable = metrics_.unserviceable();
  s.invalid = invalid_;
  s.transfer_retries = transfer_retries_;
  s.transfer_failures = transfer_failures_;
  s.leases_granted = leases_.granted();
  s.leases_released = released_;
  s.active_leases = leases_.active();
  s.queue_depth = queue_.size();
  s.evictions = metrics_.evictions();
  s.bytes_requested = metrics_.bytes_requested();
  s.bytes_missed = metrics_.bytes_missed();
  s.bytes_evicted = metrics_.bytes_evicted();
  s.used_bytes = cache_.used_bytes();
  s.capacity_bytes = cache_.capacity();
  s.resident_files = cache_.file_count();
  return s;
}

std::vector<std::string> BundleServer::audit() const {
  std::lock_guard<OrderedMutex> lock(mu_);
  std::vector<std::string> violations;
  const FileCatalog& catalog = mss_->catalog();

  // Capacity: byte accounting must match a from-scratch recount and never
  // exceed capacity; the resident list must be duplicate-free.
  Bytes recount = 0;
  std::unordered_set<FileId> seen;
  for (FileId id : cache_.resident_files()) {
    recount += catalog.size_of(id);
    if (!seen.insert(id).second)
      violations.push_back("serve.capacity: duplicate resident file " +
                           std::to_string(id));
  }
  if (recount != cache_.used_bytes())
    violations.push_back(
        "serve.capacity: used_bytes " + std::to_string(cache_.used_bytes()) +
        " != recomputed resident sum " + std::to_string(recount));
  if (cache_.used_bytes() > cache_.capacity())
    violations.push_back("serve.capacity: used exceeds capacity");

  // Leases: every leased file must be resident and pinned; every pinned
  // file must be covered by at least one live lease. Shard locks nest
  // under mu_ here, and because grants and releases mutate the table only
  // while holding mu_ themselves, the snapshot is point-in-time
  // consistent.
  for (const auto& [lease, bundle] : leases_.snapshot()) {
    for (FileId id : bundle.files) {
      if (!cache_.contains(id))
        violations.push_back("serve.lease: lease " + std::to_string(lease) +
                             " covers non-resident file " +
                             std::to_string(id));
      else if (!cache_.pinned(id))
        violations.push_back("serve.lease: lease " + std::to_string(lease) +
                             " covers unpinned file " + std::to_string(id));
    }
  }
  for (FileId id : cache_.resident_files()) {
    if (cache_.pinned(id) && !leases_.covers(id))
      violations.push_back("serve.lease: pinned file " + std::to_string(id) +
                           " has no covering lease");
  }

  // Accounting: admissions and lease counters must tie out.
  if (leases_.granted() != metrics_.jobs())
    violations.push_back("serve.accounting: leases granted " +
                         std::to_string(leases_.granted()) +
                         " != jobs admitted " +
                         std::to_string(metrics_.jobs()));
  if (leases_.active() != leases_.granted() - released_)
    violations.push_back("serve.accounting: active leases inconsistent");
  if (metrics_.request_hits() > metrics_.jobs())
    violations.push_back("serve.accounting: more hits than jobs");
  if (metrics_.bytes_missed() > metrics_.bytes_requested())
    violations.push_back("serve.accounting: missed > requested bytes");
  return violations;
}

}  // namespace fbc::service
