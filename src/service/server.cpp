#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "core/registry.hpp"
#include "util/log.hpp"

namespace fbc::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Bounded exponential backoff: base * 2^(attempt-1), capped at 8x base.
std::chrono::milliseconds backoff_for(std::uint32_t base_ms,
                                      std::uint32_t attempt) {
  const std::uint32_t shift = std::min<std::uint32_t>(attempt - 1, 3);
  return std::chrono::milliseconds(
      static_cast<std::uint64_t>(base_ms) << shift);
}

}  // namespace

AdmitOrder parse_admit_order(const std::string& name) {
  if (name == "fifo") return AdmitOrder::Fifo;
  if (name == "value") return AdmitOrder::ValueDensity;
  throw std::invalid_argument("unknown admit order '" + name +
                              "' (expected fifo|value)");
}

BundleServer::BundleServer(const ServiceConfig& config,
                           const StorageBackend& mss)
    : config_(config),
      mss_(&mss),
      transfers_{.max_parallel = config.transfer_streams},
      cache_(config.cache_bytes, mss.catalog()),
      fail_rng_(config.seed ^ 0xf3f3f3f3f3f3f3f3ULL) {
  if (config_.max_queue == 0)
    throw std::invalid_argument("BundleServer: max_queue must be >= 1");
  PolicyContext context;
  context.catalog = &mss.catalog();
  context.seed = config.seed;
  policy_ = make_policy(config_.policy, context);
}

BundleServer::~BundleServer() { close(); }

void BundleServer::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

std::size_t BundleServer::choose_locked() const {
  if (config_.order == AdmitOrder::Fifo || queue_.size() <= 1) return 0;
  // ValueDensity: the request with the highest already-resident byte
  // fraction is the cheapest to admit; FIFO breaks ties (strictly-better
  // only), so equal-density requests cannot starve each other.
  std::size_t best = 0;
  double best_density = -1.0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Waiter& w = *queue_[i];
    Bytes resident = 0;
    for (FileId id : w.request->files) {
      if (cache_.contains(id)) resident += mss_->catalog().size_of(id);
    }
    const double density =
        w.bundle_bytes == 0
            ? 1.0
            : static_cast<double>(resident) /
                  static_cast<double>(w.bundle_bytes);
    if (density > best_density) {
      best = i;
      best_density = density;
    }
  }
  return best;
}

bool BundleServer::fits_locked(const Request& request) const {
  const Bytes missing = cache_.missing_bytes(request);
  if (missing <= cache_.free_bytes()) return true;
  Bytes evictable = 0;
  for (FileId id : cache_.resident_files()) {
    if (!cache_.pinned(id) && !request.contains(id))
      evictable += mss_->catalog().size_of(id);
  }
  return missing <= cache_.free_bytes() + evictable;
}

LeaseId BundleServer::admit_locked(const Request& request, Bytes bundle_bytes,
                                   bool* request_hit, double* stage_s) {
  policy_->on_job_arrival(request, cache_);
  const std::vector<FileId> missing = cache_.missing_files(request);
  const Bytes missing_bytes = mss_->catalog().bundle_bytes(missing);
  metrics_.record_job(bundle_bytes, missing_bytes, request.size(),
                      request.size() - missing.size());
  *stage_s = 0.0;
  if (missing.empty()) {
    *request_hit = true;
    policy_->on_request_hit(request, cache_);
  } else {
    *request_hit = false;
    if (cache_.free_bytes() < missing_bytes) {
      const Bytes needed = missing_bytes - cache_.free_bytes();
      for (FileId victim : policy_->select_victims(request, needed, cache_)) {
        metrics_.record_eviction(mss_->catalog().size_of(victim));
        cache_.evict(victim);  // throws on a leased (pinned) file
        policy_->on_file_evicted(victim);
      }
      if (cache_.free_bytes() < missing_bytes)
        throw std::runtime_error(
            "BundleServer: policy freed insufficient space");
    }
    for (FileId id : missing) cache_.insert(id);
    policy_->on_files_loaded(request, missing, cache_);
    *stage_s = transfers_.stage_seconds(missing, *mss_);
  }
  return leases_.grant(request, cache_);
}

AcquireResult BundleServer::acquire(const Request& request) {
  AcquireResult result;
  const FileCatalog& catalog = mss_->catalog();
  const bool valid =
      !request.empty() &&
      std::all_of(request.files.begin(), request.files.end(),
                  [&](FileId id) { return catalog.valid(id); });

  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) {
    result.status = AcquireStatus::Closed;
    return result;
  }
  if (!valid) {
    ++invalid_;
    result.status = AcquireStatus::InvalidRequest;
    return result;
  }
  const Bytes bundle_bytes = catalog.request_bytes(request);
  if (bundle_bytes > cache_.capacity()) {
    metrics_.record_unserviceable();
    result.status = AcquireStatus::Unserviceable;
    return result;
  }
  if (queue_.size() >= config_.max_queue) {
    ++rejected_full_;
    result.status = AcquireStatus::QueueFull;
    // Load-proportional hint: deeper queue, longer suggested wait.
    result.retry_after_ms = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, config_.retry_backoff_ms) *
        (1 + queue_.size()));
    return result;
  }

  Waiter waiter{&request, bundle_bytes, admissions_};
  queue_.push_back(&waiter);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.timeout_ms);
  auto leave_queue = [&] {
    queue_.erase(std::find(queue_.begin(), queue_.end(), &waiter));
    cv_.notify_all();
  };

  std::uint32_t failed_attempts = 0;
  for (;;) {
    if (closed_) {
      leave_queue();
      result.status = AcquireStatus::Closed;
      return result;
    }
    if (queue_[choose_locked()] == &waiter && fits_locked(request)) {
      // The simulated MSS transfer for this attempt: draw the injected
      // failure *before* the reserve so a failed attempt leaves the cache
      // untouched, back off, and try again bounded by max_retries.
      if (config_.transfer_fail_prob > 0.0 &&
          fail_rng_.bernoulli(config_.transfer_fail_prob)) {
        ++failed_attempts;
        if (failed_attempts > config_.max_retries) {
          ++transfer_failures_;
          leave_queue();
          result.status = AcquireStatus::TransferFailed;
          result.retries = failed_attempts - 1;
          return result;
        }
        ++transfer_retries_;
        const auto backoff =
            backoff_for(config_.retry_backoff_ms, failed_attempts);
        lock.unlock();
        std::this_thread::sleep_for(backoff);
        lock.lock();
        continue;  // re-evaluate order and fit after the backoff
      }
      break;  // chosen, fits, transfer will succeed: admit
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      leave_queue();
      ++timed_out_;
      result.status = AcquireStatus::TimedOut;
      result.retries = failed_attempts;
      return result;
    }
  }

  queue_.erase(std::find(queue_.begin(), queue_.end(), &waiter));
  metrics_.record_queue_wait(
      static_cast<double>(admissions_ - waiter.admissions_at_enqueue));
  double stage_s = 0.0;
  result.lease = admit_locked(request, bundle_bytes, &result.request_hit,
                              &stage_s);
  ++admissions_;
  cv_.notify_all();
  lock.unlock();

  // Fetch phase: the bundle is reserved (pinned), so the simulated
  // transfer can proceed without the lock while other admissions overlap.
  if (config_.time_scale > 0.0 && stage_s > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        stage_s * config_.time_scale));
  }
  result.status = AcquireStatus::Ok;
  result.retries = failed_attempts;
  return result;
}

bool BundleServer::release(LeaseId lease) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!leases_.release(lease, cache_)) return false;
  ++released_;
  cv_.notify_all();
  return true;
}

ServiceStats BundleServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s;
  s.requests = metrics_.jobs();
  s.request_hits = metrics_.request_hits();
  s.rejected_full = rejected_full_;
  s.timed_out = timed_out_;
  s.unserviceable = metrics_.unserviceable();
  s.invalid = invalid_;
  s.transfer_retries = transfer_retries_;
  s.transfer_failures = transfer_failures_;
  s.leases_granted = leases_.granted();
  s.leases_released = released_;
  s.active_leases = leases_.active();
  s.queue_depth = queue_.size();
  s.evictions = metrics_.evictions();
  s.bytes_requested = metrics_.bytes_requested();
  s.bytes_missed = metrics_.bytes_missed();
  s.bytes_evicted = metrics_.bytes_evicted();
  s.used_bytes = cache_.used_bytes();
  s.capacity_bytes = cache_.capacity();
  s.resident_files = cache_.file_count();
  return s;
}

std::vector<std::string> BundleServer::audit() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> violations;
  const FileCatalog& catalog = mss_->catalog();

  // Capacity: byte accounting must match a from-scratch recount and never
  // exceed capacity; the resident list must be duplicate-free.
  Bytes recount = 0;
  std::unordered_set<FileId> seen;
  for (FileId id : cache_.resident_files()) {
    recount += catalog.size_of(id);
    if (!seen.insert(id).second)
      violations.push_back("serve.capacity: duplicate resident file " +
                           std::to_string(id));
  }
  if (recount != cache_.used_bytes())
    violations.push_back(
        "serve.capacity: used_bytes " + std::to_string(cache_.used_bytes()) +
        " != recomputed resident sum " + std::to_string(recount));
  if (cache_.used_bytes() > cache_.capacity())
    violations.push_back("serve.capacity: used exceeds capacity");

  // Leases: every leased file must be resident and pinned; every pinned
  // file must be covered by at least one live lease.
  // fbclint:ignore(L005) -- accumulation below is order-independent.
  for (const auto& [lease, bundle] : leases_.leases()) {
    for (FileId id : bundle.files) {
      if (!cache_.contains(id))
        violations.push_back("serve.lease: lease " + std::to_string(lease) +
                             " covers non-resident file " +
                             std::to_string(id));
      else if (!cache_.pinned(id))
        violations.push_back("serve.lease: lease " + std::to_string(lease) +
                             " covers unpinned file " + std::to_string(id));
    }
  }
  for (FileId id : cache_.resident_files()) {
    if (cache_.pinned(id) && !leases_.covers(id))
      violations.push_back("serve.lease: pinned file " + std::to_string(id) +
                           " has no covering lease");
  }

  // Accounting: admissions and lease counters must tie out.
  if (leases_.granted() != metrics_.jobs())
    violations.push_back("serve.accounting: leases granted " +
                         std::to_string(leases_.granted()) +
                         " != jobs admitted " +
                         std::to_string(metrics_.jobs()));
  if (leases_.active() != leases_.granted() - released_)
    violations.push_back("serve.accounting: active leases inconsistent");
  if (metrics_.request_hits() > metrics_.jobs())
    violations.push_back("serve.accounting: more hits than jobs");
  if (metrics_.bytes_missed() > metrics_.bytes_requested())
    violations.push_back("serve.accounting: missed > requested bytes");
  return violations;
}

}  // namespace fbc::service
