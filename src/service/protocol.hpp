// fbcd wire protocol: length-prefixed binary frames over a stream socket.
//
// Frame layout (all integers little-endian, see docs/SERVING.md):
//
//   +----------------+--------+------------------------+
//   | payload_len u32| type u8| payload (payload_len B)|
//   +----------------+--------+------------------------+
//
// The protocol is deliberately minimal -- four request/reply pairs
// (acquire a bundle lease, release a lease, snapshot server stats, export
// an observability metrics snapshot) -- and strictly client-initiated: the
// server sends exactly one reply frame per request frame. Unknown message
// types and oversized or truncated frames are protocol errors; the server
// closes the connection.
//
// Every MsgType enumerator must be handled by the encoder and decoder
// switches in protocol.cpp; fbclint's L003 rule checks that completeness.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "cache/types.hpp"
#include "obs/counter.hpp"
#include "obs/histogram.hpp"

namespace fbc::service {

/// Lease handle returned by a successful acquire; 0 is never granted.
using LeaseId = std::uint64_t;

/// Frame type tag (one byte on the wire).
enum class MsgType : std::uint8_t {
  AcquireRequest = 1,
  AcquireReply = 2,
  ReleaseRequest = 3,
  ReleaseReply = 4,
  StatsRequest = 5,
  StatsReply = 6,
  MetricsRequest = 7,
  MetricsReply = 8,
  HelloRequest = 9,
  HelloReply = 10,
};

/// What kind of endpoint answered a HelloRequest (one byte on the wire).
enum class EndpointRole : std::uint8_t {
  Shard = 1,   ///< a single BundleServer (fbcd)
  Router = 2,  ///< a ClusterRouter fronting shard_count shards (fbcgrid)
};

/// Outcome of an acquire call (one byte on the wire).
enum class AcquireStatus : std::uint8_t {
  Ok = 0,              ///< bundle staged and leased
  QueueFull = 1,       ///< backpressure: retry after retry_after_ms
  TimedOut = 2,        ///< not admitted within the request timeout
  Unserviceable = 3,   ///< bundle larger than the whole cache
  InvalidRequest = 4,  ///< empty bundle or unknown file id
  TransferFailed = 5,  ///< MSS staging failed after all retries
  Closed = 6,          ///< server is shutting down
  ShardsDown = 7,      ///< cluster: no live shard can host the bundle
};

[[nodiscard]] const char* to_string(MsgType type) noexcept;
[[nodiscard]] const char* to_string(AcquireStatus status) noexcept;

/// Server counters reported by a stats snapshot. Field order is the wire
/// order; every field is encoded as a u64.
struct ServiceStats {
  std::uint64_t requests = 0;        ///< acquire calls accepted for service
  std::uint64_t request_hits = 0;    ///< whole bundle already resident
  std::uint64_t rejected_full = 0;   ///< backpressure rejections
  std::uint64_t timed_out = 0;       ///< queue-wait timeouts
  std::uint64_t unserviceable = 0;   ///< bundle bigger than the cache
  std::uint64_t invalid = 0;         ///< malformed acquire requests
  std::uint64_t transfer_retries = 0;   ///< MSS transfer attempts retried
  std::uint64_t transfer_failures = 0;  ///< acquires failed after retries
  std::uint64_t leases_granted = 0;
  std::uint64_t leases_released = 0;
  std::uint64_t active_leases = 0;
  std::uint64_t queue_depth = 0;     ///< waiters queued at snapshot time
  std::uint64_t evictions = 0;
  std::uint64_t bytes_requested = 0;
  std::uint64_t bytes_missed = 0;    ///< demand bytes staged from the MSS
  std::uint64_t bytes_evicted = 0;
  std::uint64_t used_bytes = 0;
  std::uint64_t capacity_bytes = 0;
  std::uint64_t resident_files = 0;

  bool operator==(const ServiceStats&) const = default;
};

/// One exported histogram, keyed by a stable metric name
/// ("acquire.queue_us", "acquire.total_us", ...).
struct NamedHistogram {
  std::string name;
  obs::Histogram hist;

  bool operator==(const NamedHistogram&) const = default;
};

/// Full observability snapshot exported by MsgType::MetricsReply: the
/// plain stats counters plus named counters and latency/size histograms.
/// Wire format is documented in docs/OBSERVABILITY.md; every histogram is
/// validated through obs::Histogram::from_state on decode.
struct MetricsSnapshot {
  ServiceStats stats;
  std::vector<obs::CounterSample> counters;    ///< sorted by name
  std::vector<NamedHistogram> histograms;      ///< sorted by name

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Encoder-side caps mirrored by the decoder; frames outside these bounds
/// are protocol errors in both directions.
inline constexpr std::size_t kMaxMetricsCounters = 1024;
inline constexpr std::size_t kMaxMetricsHistograms = 64;
inline constexpr std::size_t kMaxMetricNameBytes = 64;

// -- message payloads ------------------------------------------------------

struct AcquireRequestMsg {
  /// Client-chosen correlation id, echoed in the reply.
  std::uint64_t cookie = 0;
  std::vector<FileId> files;
};

struct AcquireReplyMsg {
  std::uint64_t cookie = 0;
  AcquireStatus status = AcquireStatus::Ok;
  LeaseId lease = 0;
  /// Backpressure hint: when status == QueueFull, wait this long before
  /// retrying.
  std::uint32_t retry_after_ms = 0;
  /// MSS transfer attempts that had to be retried for this request.
  std::uint32_t retries = 0;
  /// True when the whole bundle was already resident (request-hit).
  std::uint8_t request_hit = 0;
};

struct ReleaseRequestMsg {
  LeaseId lease = 0;
};

struct ReleaseReplyMsg {
  std::uint8_t ok = 0;
};

struct StatsRequestMsg {};

struct StatsReplyMsg {
  ServiceStats stats;
};

struct MetricsRequestMsg {};

struct MetricsReplyMsg {
  MetricsSnapshot metrics;
};

struct HelloRequestMsg {};

/// Identity of the serving endpoint behind the socket: a lone shard, or a
/// cluster router. `shard_id` is the shard's position in its cluster (0
/// for a standalone fbcd or for a router); `shard_count` is the number of
/// shards behind the endpoint (1 for a shard); `shards_down` is how many
/// of them the router currently has marked down (always 0 for a shard).
struct HelloReplyMsg {
  EndpointRole role = EndpointRole::Shard;
  std::uint32_t shard_id = 0;
  std::uint32_t shard_count = 1;
  std::uint32_t shards_down = 0;
};

using Message =
    std::variant<AcquireRequestMsg, AcquireReplyMsg, ReleaseRequestMsg,
                 ReleaseReplyMsg, StatsRequestMsg, StatsReplyMsg,
                 MetricsRequestMsg, MetricsReplyMsg, HelloRequestMsg,
                 HelloReplyMsg>;

/// Frame type of a message value.
[[nodiscard]] MsgType message_type(const Message& message) noexcept;

/// Raised by the decoder on malformed input. The daemon closes the
/// offending connection; it never crashes the server.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("protocol: " + what) {}
};

/// Fixed-size frame prefix: payload length + type byte.
struct FrameHeader {
  std::uint32_t payload_len = 0;
  MsgType type = MsgType::AcquireRequest;
};

inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Upper bound on payload size (a ~1M-file bundle); larger frames are a
/// protocol error so a corrupt length prefix cannot trigger a huge
/// allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 4u << 20;

/// Serializes `message` as one complete frame appended to `out`.
void encode_frame(const Message& message, std::vector<std::uint8_t>* out);

/// Parses and validates a frame header from exactly kFrameHeaderBytes
/// bytes. Throws ProtocolError for unknown types or oversized payloads.
[[nodiscard]] FrameHeader decode_header(std::span<const std::uint8_t> bytes);

/// Decodes a payload of the given type. Throws ProtocolError when the
/// payload is truncated, has trailing garbage, or carries invalid values.
[[nodiscard]] Message decode_payload(MsgType type,
                                     std::span<const std::uint8_t> payload);

}  // namespace fbc::service
