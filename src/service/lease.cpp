#include "service/lease.hpp"

#include <algorithm>

namespace fbc::service {

LeaseId LeaseTable::grant(const Request& request, DiskCache& cache) {
  for (FileId id : request.files) cache.pin(id);
  const LeaseId lease = next_++;
  leases_.emplace(lease, request);
  return lease;
}

bool LeaseTable::release(LeaseId id, DiskCache& cache) {
  const auto it = leases_.find(id);
  if (it == leases_.end()) return false;
  for (FileId file : it->second.files) cache.unpin(file);
  leases_.erase(it);
  return true;
}

bool LeaseTable::covers(FileId id) const noexcept {
  // fbclint:ignore(L005) -- membership test only, order-independent.
  for (const auto& [lease, request] : leases_) {
    if (request.contains(id)) return true;
  }
  return false;
}

const Request* LeaseTable::bundle(LeaseId id) const noexcept {
  const auto it = leases_.find(id);
  return it == leases_.end() ? nullptr : &it->second;
}

void LeaseTable::release_all(DiskCache& cache) {
  // fbclint:ignore(L005) -- unpin order does not affect any outcome.
  for (const auto& [lease, request] : leases_) {
    for (FileId file : request.files) cache.unpin(file);
  }
  leases_.clear();
}

ShardedLeaseTable::ShardedLeaseTable(std::size_t shards)
    : lease_shards_(std::max<std::size_t>(1, shards)),
      file_shards_(std::max<std::size_t>(1, shards)) {}

void ShardedLeaseTable::add_cover(const Request& request) {
  for (FileId id : request.files) {
    FileShard& shard = file_shard(id);
    std::lock_guard<OrderedMutex> lock(shard.file_mu);
    ++shard.covers[id];
  }
}

void ShardedLeaseTable::drop_cover(const Request& request) {
  for (FileId id : request.files) {
    FileShard& shard = file_shard(id);
    std::lock_guard<OrderedMutex> lock(shard.file_mu);
    const auto it = shard.covers.find(id);
    if (it != shard.covers.end() && --it->second == 0) shard.covers.erase(it);
  }
}

LeaseId ShardedLeaseTable::grant(const Request& request) {
  const LeaseId id = next_.fetch_add(1, std::memory_order_acq_rel);
  {
    LeaseShard& shard = lease_shard(id);
    std::lock_guard<OrderedMutex> lock(shard.lease_mu);
    shard.leases.emplace(id, request);
  }
  add_cover(request);
  active_.fetch_add(1, std::memory_order_acq_rel);
  return id;
}

std::optional<Request> ShardedLeaseTable::take(LeaseId id) {
  std::optional<Request> bundle;
  {
    LeaseShard& shard = lease_shard(id);
    std::lock_guard<OrderedMutex> lock(shard.lease_mu);
    const auto it = shard.leases.find(id);
    if (it == shard.leases.end()) return std::nullopt;
    bundle = std::move(it->second);
    shard.leases.erase(it);
  }
  drop_cover(*bundle);
  active_.fetch_sub(1, std::memory_order_acq_rel);
  return bundle;
}

bool ShardedLeaseTable::covers(FileId id) const {
  return cover_count(id) > 0;
}

std::uint32_t ShardedLeaseTable::cover_count(FileId id) const {
  const FileShard& shard = file_shard(id);
  std::lock_guard<OrderedMutex> lock(shard.file_mu);
  const auto it = shard.covers.find(id);
  return it == shard.covers.end() ? 0 : it->second;
}

std::optional<Request> ShardedLeaseTable::bundle(LeaseId id) const {
  const LeaseShard& shard = lease_shard(id);
  std::lock_guard<OrderedMutex> lock(shard.lease_mu);
  const auto it = shard.leases.find(id);
  if (it == shard.leases.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<LeaseId, Request>> ShardedLeaseTable::snapshot() const {
  std::vector<std::pair<LeaseId, Request>> out;
  for (const LeaseShard& shard : lease_shards_) {
    std::lock_guard<OrderedMutex> lock(shard.lease_mu);
    // fbclint:ignore(L005) -- collection only; callers sort by lease id.
    for (const auto& [id, request] : shard.leases) out.emplace_back(id, request);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<Request> ShardedLeaseTable::take_all() {
  std::vector<Request> bundles;
  for (auto& [id, request] : snapshot()) {
    std::optional<Request> taken = take(id);
    if (taken.has_value()) bundles.push_back(std::move(*taken));
  }
  return bundles;
}

}  // namespace fbc::service
