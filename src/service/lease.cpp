#include "service/lease.hpp"

namespace fbc::service {

LeaseId LeaseTable::grant(const Request& request, DiskCache& cache) {
  for (FileId id : request.files) cache.pin(id);
  const LeaseId lease = next_++;
  leases_.emplace(lease, request);
  return lease;
}

bool LeaseTable::release(LeaseId id, DiskCache& cache) {
  const auto it = leases_.find(id);
  if (it == leases_.end()) return false;
  for (FileId file : it->second.files) cache.unpin(file);
  leases_.erase(it);
  return true;
}

bool LeaseTable::covers(FileId id) const noexcept {
  // fbclint:ignore(L005) -- membership test only, order-independent.
  for (const auto& [lease, request] : leases_) {
    if (request.contains(id)) return true;
  }
  return false;
}

const Request* LeaseTable::bundle(LeaseId id) const noexcept {
  const auto it = leases_.find(id);
  return it == leases_.end() ? nullptr : &it->second;
}

void LeaseTable::release_all(DiskCache& cache) {
  // fbclint:ignore(L005) -- unpin order does not affect any outcome.
  for (const auto& [lease, request] : leases_) {
    for (FileId file : request.files) cache.unpin(file);
  }
  leases_.clear();
}

}  // namespace fbc::service
