// BundleClient: one synchronous connection to a BundleDaemon.
//
// The client speaks the strict request/reply discipline the daemon
// enforces, so a single BundleClient must not be shared across threads --
// open one per worker (fbcload does exactly that).
#pragma once

#include <cstdint>
#include <vector>

#include "service/net.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace fbc::service {

/// Synchronous wire-protocol client (one connection, one thread).
class BundleClient {
 public:
  /// Connects to a daemon on 127.0.0.1:`port`. Throws NetError on refusal.
  /// `legacy_wire` reads replies with unbuffered per-frame recvs (the
  /// pre-batching transport) -- the serving bench baseline leg, matching
  /// ServiceConfig::legacy_wire on the daemon side.
  explicit BundleClient(std::uint16_t port, bool legacy_wire = false);

  /// Requests a lease on `files`. Blocks until the daemon replies (which
  /// may take the server-side queue wait plus staging time).
  /// Throws NetError/ProtocolError if the connection breaks.
  [[nodiscard]] AcquireResult acquire(const std::vector<FileId>& files);

  /// Releases a lease. Returns false for ids the server does not know.
  bool release(LeaseId lease);

  /// Pipelines release(lease) + acquire(files) into one wire round trip:
  /// both request frames are written back-to-back, then both replies are
  /// read in order. The daemon handles a connection's messages strictly
  /// sequentially, so the release is fully applied before the acquire is
  /// considered -- semantically identical to release() then acquire(),
  /// minus one network round trip, which is the dominant per-job cost of
  /// the serving hot path for small bundles. `released` (optional)
  /// receives the release outcome.
  [[nodiscard]] AcquireResult release_acquire(
      LeaseId lease, const std::vector<FileId>& files,
      bool* released = nullptr);

  /// Fetches the server's stats snapshot.
  [[nodiscard]] ServiceStats stats();

  /// Fetches the server's full observability snapshot (stats, counters,
  /// per-stage histograms). Histograms arrive validated: the decoder
  /// rejects inconsistent bucket state as a ProtocolError.
  [[nodiscard]] MetricsSnapshot metrics();

  /// Asks the endpoint who it is (shard vs router, shard id/count).
  [[nodiscard]] HelloReplyMsg hello();

  /// Closes the connection (leases still held are reclaimed server-side).
  void disconnect() noexcept { fd_.reset(); }

  /// Drops the current connection (if any) and dials the same port
  /// again, resetting the buffered reader so no stale reply bytes
  /// survive. Throws NetError if the daemon is not back yet -- callers
  /// (fbcctl --watch) retry on their own schedule. Held leases on the
  /// old connection are reclaimed server-side.
  void reconnect();

  /// The port this client dials (the reconnect target).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  /// Sends `request` and reads the single reply frame.
  Message round_trip(const Message& request);

  /// Reads one reply frame (buffered, or per-frame in legacy mode).
  std::optional<Message> read_reply();

  UniqueFd fd_;
  std::uint16_t port_ = 0;
  bool legacy_wire_ = false;
  FrameReader reader_;  ///< buffered: batched replies cost one recv
  std::vector<std::uint8_t> send_buf_;  ///< reused burst-encode scratch
  std::uint64_t next_cookie_ = 1;
};

}  // namespace fbc::service
