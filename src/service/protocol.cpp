#include "service/protocol.hpp"

namespace fbc::service {

namespace {

void put_u8(std::vector<std::uint8_t>* out, std::uint8_t v) {
  out->push_back(v);
}

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Bounds-checked little-endian reader over one payload.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = static_cast<std::uint32_t>(bytes_[pos_]) |
                            static_cast<std::uint32_t>(bytes_[pos_ + 1]) << 8 |
                            static_cast<std::uint32_t>(bytes_[pos_ + 2]) << 16 |
                            static_cast<std::uint32_t>(bytes_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | hi << 32;
  }

  std::string str(std::size_t n) {
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  void finish() const {
    if (pos_ != bytes_.size())
      throw ProtocolError("trailing bytes in payload");
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) throw ProtocolError("truncated payload");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void encode_stats(std::vector<std::uint8_t>* out, const ServiceStats& s) {
  put_u64(out, s.requests);
  put_u64(out, s.request_hits);
  put_u64(out, s.rejected_full);
  put_u64(out, s.timed_out);
  put_u64(out, s.unserviceable);
  put_u64(out, s.invalid);
  put_u64(out, s.transfer_retries);
  put_u64(out, s.transfer_failures);
  put_u64(out, s.leases_granted);
  put_u64(out, s.leases_released);
  put_u64(out, s.active_leases);
  put_u64(out, s.queue_depth);
  put_u64(out, s.evictions);
  put_u64(out, s.bytes_requested);
  put_u64(out, s.bytes_missed);
  put_u64(out, s.bytes_evicted);
  put_u64(out, s.used_bytes);
  put_u64(out, s.capacity_bytes);
  put_u64(out, s.resident_files);
}

ServiceStats decode_stats(Reader* in) {
  ServiceStats s;
  s.requests = in->u64();
  s.request_hits = in->u64();
  s.rejected_full = in->u64();
  s.timed_out = in->u64();
  s.unserviceable = in->u64();
  s.invalid = in->u64();
  s.transfer_retries = in->u64();
  s.transfer_failures = in->u64();
  s.leases_granted = in->u64();
  s.leases_released = in->u64();
  s.active_leases = in->u64();
  s.queue_depth = in->u64();
  s.evictions = in->u64();
  s.bytes_requested = in->u64();
  s.bytes_missed = in->u64();
  s.bytes_evicted = in->u64();
  s.used_bytes = in->u64();
  s.capacity_bytes = in->u64();
  s.resident_files = in->u64();
  return s;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty() || name.size() > kMaxMetricNameBytes) return false;
  for (char c : name)
    if (c < 0x21 || c > 0x7e) return false;  // graphic ASCII only
  return true;
}

void encode_metric_name(std::vector<std::uint8_t>* out,
                        const std::string& name) {
  if (!valid_metric_name(name))
    throw ProtocolError("unencodable metric name \"" + name + "\"");
  put_u8(out, static_cast<std::uint8_t>(name.size()));
  out->insert(out->end(), name.begin(), name.end());
}

std::string decode_metric_name(Reader* in) {
  const std::uint8_t len = in->u8();
  std::string name = in->str(len);
  if (!valid_metric_name(name))
    throw ProtocolError("invalid metric name");
  return name;
}

void encode_metrics(std::vector<std::uint8_t>* out, const MetricsSnapshot& m) {
  encode_stats(out, m.stats);
  if (m.counters.size() > kMaxMetricsCounters)
    throw ProtocolError("too many counters to encode");
  put_u32(out, static_cast<std::uint32_t>(m.counters.size()));
  for (const auto& [name, value] : m.counters) {
    encode_metric_name(out, name);
    put_u64(out, value);
  }
  if (m.histograms.size() > kMaxMetricsHistograms)
    throw ProtocolError("too many histograms to encode");
  put_u8(out, static_cast<std::uint8_t>(m.histograms.size()));
  for (const auto& named : m.histograms) {
    encode_metric_name(out, named.name);
    const obs::HistogramState state = named.hist.state();
    put_u64(out, state.sum);
    put_u64(out, state.min);
    put_u64(out, state.max);
    std::uint8_t nonzero = 0;
    for (std::uint64_t c : state.buckets)
      if (c != 0) ++nonzero;
    put_u8(out, nonzero);
    for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i) {
      if (state.buckets[i] == 0) continue;
      put_u8(out, static_cast<std::uint8_t>(i));
      put_u64(out, state.buckets[i]);
    }
  }
}

MetricsSnapshot decode_metrics(Reader* in) {
  MetricsSnapshot m;
  m.stats = decode_stats(in);
  const std::uint32_t counter_count = in->u32();
  if (counter_count > kMaxMetricsCounters)
    throw ProtocolError("counter count exceeds the metrics cap");
  m.counters.reserve(counter_count);
  for (std::uint32_t i = 0; i < counter_count; ++i) {
    std::string name = decode_metric_name(in);
    if (i > 0 && name <= m.counters.back().first)
      throw ProtocolError("counter names not strictly increasing");
    m.counters.emplace_back(std::move(name), in->u64());
  }
  const std::uint8_t hist_count = in->u8();
  if (hist_count > kMaxMetricsHistograms)
    throw ProtocolError("histogram count exceeds the metrics cap");
  m.histograms.reserve(hist_count);
  for (std::uint8_t i = 0; i < hist_count; ++i) {
    NamedHistogram named;
    named.name = decode_metric_name(in);
    if (i > 0 && named.name <= m.histograms.back().name)
      throw ProtocolError("histogram names not strictly increasing");
    obs::HistogramState state;
    state.sum = in->u64();
    state.min = in->u64();
    state.max = in->u64();
    const std::uint8_t nonzero = in->u8();
    if (nonzero > obs::kHistogramBuckets)
      throw ProtocolError("histogram bucket count out of range");
    int prev = -1;
    for (std::uint8_t b = 0; b < nonzero; ++b) {
      const std::uint8_t index = in->u8();
      if (index >= obs::kHistogramBuckets || static_cast<int>(index) <= prev)
        throw ProtocolError("histogram bucket index out of order");
      const std::uint64_t count = in->u64();
      if (count == 0)
        throw ProtocolError("histogram bucket with zero count");
      state.buckets[index] = count;
      prev = index;
    }
    std::optional<obs::Histogram> hist = obs::Histogram::from_state(state);
    if (!hist)
      throw ProtocolError("inconsistent histogram state for \"" + named.name +
                          "\"");
    named.hist = *hist;
    m.histograms.push_back(std::move(named));
  }
  return m;
}

AcquireStatus decode_status(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(AcquireStatus::ShardsDown))
    throw ProtocolError("unknown acquire status " + std::to_string(raw));
  return static_cast<AcquireStatus>(raw);
}

void encode_payload(const Message& message, std::vector<std::uint8_t>* out) {
  // Payload encoder switch: must cover every MsgType (fbclint L003).
  switch (message_type(message)) {
    case MsgType::AcquireRequest: {
      const auto& m = std::get<AcquireRequestMsg>(message);
      put_u64(out, m.cookie);
      put_u32(out, static_cast<std::uint32_t>(m.files.size()));
      for (FileId id : m.files) put_u32(out, id);
      return;
    }
    case MsgType::AcquireReply: {
      const auto& m = std::get<AcquireReplyMsg>(message);
      put_u64(out, m.cookie);
      put_u8(out, static_cast<std::uint8_t>(m.status));
      put_u64(out, m.lease);
      put_u32(out, m.retry_after_ms);
      put_u32(out, m.retries);
      put_u8(out, m.request_hit);
      return;
    }
    case MsgType::ReleaseRequest: {
      put_u64(out, std::get<ReleaseRequestMsg>(message).lease);
      return;
    }
    case MsgType::ReleaseReply: {
      put_u8(out, std::get<ReleaseReplyMsg>(message).ok);
      return;
    }
    case MsgType::StatsRequest:
      return;  // empty payload
    case MsgType::StatsReply: {
      encode_stats(out, std::get<StatsReplyMsg>(message).stats);
      return;
    }
    case MsgType::MetricsRequest:
      return;  // empty payload
    case MsgType::MetricsReply: {
      encode_metrics(out, std::get<MetricsReplyMsg>(message).metrics);
      return;
    }
    case MsgType::HelloRequest:
      return;  // empty payload
    case MsgType::HelloReply: {
      const auto& m = std::get<HelloReplyMsg>(message);
      put_u8(out, static_cast<std::uint8_t>(m.role));
      put_u32(out, m.shard_id);
      put_u32(out, m.shard_count);
      put_u32(out, m.shards_down);
      return;
    }
  }
  throw ProtocolError("unencodable message type");
}

}  // namespace

const char* to_string(MsgType type) noexcept {
  // Name switch: must cover every MsgType (fbclint L003).
  switch (type) {
    case MsgType::AcquireRequest: return "AcquireRequest";
    case MsgType::AcquireReply: return "AcquireReply";
    case MsgType::ReleaseRequest: return "ReleaseRequest";
    case MsgType::ReleaseReply: return "ReleaseReply";
    case MsgType::StatsRequest: return "StatsRequest";
    case MsgType::StatsReply: return "StatsReply";
    case MsgType::MetricsRequest: return "MetricsRequest";
    case MsgType::MetricsReply: return "MetricsReply";
    case MsgType::HelloRequest: return "HelloRequest";
    case MsgType::HelloReply: return "HelloReply";
  }
  return "?";
}

const char* to_string(AcquireStatus status) noexcept {
  switch (status) {
    case AcquireStatus::Ok: return "ok";
    case AcquireStatus::QueueFull: return "queue-full";
    case AcquireStatus::TimedOut: return "timed-out";
    case AcquireStatus::Unserviceable: return "unserviceable";
    case AcquireStatus::InvalidRequest: return "invalid-request";
    case AcquireStatus::TransferFailed: return "transfer-failed";
    case AcquireStatus::Closed: return "closed";
    case AcquireStatus::ShardsDown: return "shards-down";
  }
  return "?";
}

MsgType message_type(const Message& message) noexcept {
  // variant alternatives are declared in MsgType order (offset by 1).
  return static_cast<MsgType>(message.index() + 1);
}

void encode_frame(const Message& message, std::vector<std::uint8_t>* out) {
  const std::size_t header_at = out->size();
  put_u32(out, 0);  // patched below
  put_u8(out, static_cast<std::uint8_t>(message_type(message)));
  const std::size_t payload_at = out->size();
  encode_payload(message, out);
  const auto payload_len = static_cast<std::uint32_t>(out->size() - payload_at);
  (*out)[header_at] = static_cast<std::uint8_t>(payload_len);
  (*out)[header_at + 1] = static_cast<std::uint8_t>(payload_len >> 8);
  (*out)[header_at + 2] = static_cast<std::uint8_t>(payload_len >> 16);
  (*out)[header_at + 3] = static_cast<std::uint8_t>(payload_len >> 24);
}

FrameHeader decode_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kFrameHeaderBytes)
    throw ProtocolError("frame header must be exactly 5 bytes");
  Reader in(bytes.first(4));
  FrameHeader header;
  header.payload_len = in.u32();
  if (header.payload_len > kMaxPayloadBytes)
    throw ProtocolError("payload length " +
                        std::to_string(header.payload_len) +
                        " exceeds the frame cap");
  const std::uint8_t raw_type = bytes[4];
  if (raw_type < static_cast<std::uint8_t>(MsgType::AcquireRequest) ||
      raw_type > static_cast<std::uint8_t>(MsgType::HelloReply))
    throw ProtocolError("unknown message type " + std::to_string(raw_type));
  header.type = static_cast<MsgType>(raw_type);
  return header;
}

Message decode_payload(MsgType type, std::span<const std::uint8_t> payload) {
  Reader in(payload);
  // Payload decoder switch: must cover every MsgType (fbclint L003).
  switch (type) {
    case MsgType::AcquireRequest: {
      AcquireRequestMsg m;
      m.cookie = in.u64();
      const std::uint32_t count = in.u32();
      if (count > (kMaxPayloadBytes - 12) / 4)
        throw ProtocolError("file count exceeds the frame cap");
      m.files.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) m.files.push_back(in.u32());
      in.finish();
      return m;
    }
    case MsgType::AcquireReply: {
      AcquireReplyMsg m;
      m.cookie = in.u64();
      m.status = decode_status(in.u8());
      m.lease = in.u64();
      m.retry_after_ms = in.u32();
      m.retries = in.u32();
      m.request_hit = in.u8();
      in.finish();
      return m;
    }
    case MsgType::ReleaseRequest: {
      ReleaseRequestMsg m;
      m.lease = in.u64();
      in.finish();
      return m;
    }
    case MsgType::ReleaseReply: {
      ReleaseReplyMsg m;
      m.ok = in.u8();
      in.finish();
      return m;
    }
    case MsgType::StatsRequest: {
      in.finish();
      return StatsRequestMsg{};
    }
    case MsgType::StatsReply: {
      StatsReplyMsg m;
      m.stats = decode_stats(&in);
      in.finish();
      return m;
    }
    case MsgType::MetricsRequest: {
      in.finish();
      return MetricsRequestMsg{};
    }
    case MsgType::MetricsReply: {
      MetricsReplyMsg m;
      m.metrics = decode_metrics(&in);
      in.finish();
      return m;
    }
    case MsgType::HelloRequest: {
      in.finish();
      return HelloRequestMsg{};
    }
    case MsgType::HelloReply: {
      HelloReplyMsg m;
      const std::uint8_t raw_role = in.u8();
      if (raw_role < static_cast<std::uint8_t>(EndpointRole::Shard) ||
          raw_role > static_cast<std::uint8_t>(EndpointRole::Router))
        throw ProtocolError("unknown endpoint role " +
                            std::to_string(raw_role));
      m.role = static_cast<EndpointRole>(raw_role);
      m.shard_id = in.u32();
      m.shard_count = in.u32();
      m.shards_down = in.u32();
      if (m.shards_down > m.shard_count)
        throw ProtocolError("hello reply with more shards down than shards");
      if (m.shard_count == 0)
        throw ProtocolError("hello reply with zero shard count");
      in.finish();
      return m;
    }
  }
  throw ProtocolError("undecodable message type");
}

}  // namespace fbc::service
