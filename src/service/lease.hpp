// Pin leases: reference-counted residency guarantees for in-flight jobs.
//
// The single-job pinning the simulator and SRM use (pin the bundle of the
// one job currently being admitted) generalizes here to many concurrent
// jobs: each granted lease pins every file of its bundle in the DiskCache,
// and because DiskCache pins are counted, overlapping bundles simply stack
// pins. A file is evictable again only once every lease covering it has
// been released -- DiskCache::evict throws on a pinned file, so the lease
// invariant (no eviction of a leased file) is enforced at the cache layer,
// not merely by policy convention.
//
// LeaseTable is not itself thread-safe: BundleServer mutates it under its
// admission mutex, which also guards the cache.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cache/cache.hpp"
#include "service/protocol.hpp"

namespace fbc::service {

/// Registry of outstanding pin leases over one DiskCache.
class LeaseTable {
 public:
  /// Pins every file of `request` in `cache` and records the lease.
  /// Precondition: every file of the bundle is resident. Lease ids are
  /// dense, start at 1, and are never reused within a server lifetime.
  [[nodiscard]] LeaseId grant(const Request& request, DiskCache& cache);

  /// Unpins the lease's files and forgets it. Returns false for unknown
  /// (or already released) ids.
  bool release(LeaseId id, DiskCache& cache);

  /// Outstanding lease count.
  [[nodiscard]] std::size_t active() const noexcept { return leases_.size(); }

  /// Total leases ever granted.
  [[nodiscard]] std::uint64_t granted() const noexcept { return next_ - 1; }

  /// True when at least one active lease covers `id`.
  [[nodiscard]] bool covers(FileId id) const noexcept;

  /// The bundle held by a lease, or nullptr for unknown ids.
  [[nodiscard]] const Request* bundle(LeaseId id) const noexcept;

  /// Releases every outstanding lease (server shutdown).
  void release_all(DiskCache& cache);

  /// Read-only view of the live table, for audits.
  [[nodiscard]] const std::unordered_map<LeaseId, Request>& leases()
      const noexcept {
    return leases_;
  }

 private:
  std::unordered_map<LeaseId, Request> leases_;
  LeaseId next_ = 1;
};

}  // namespace fbc::service
