// Pin leases: reference-counted residency guarantees for in-flight jobs.
//
// The single-job pinning the simulator and SRM use (pin the bundle of the
// one job currently being admitted) generalizes here to many concurrent
// jobs: each granted lease pins every file of its bundle in the DiskCache,
// and because DiskCache pins are counted, overlapping bundles simply stack
// pins. A file is evictable again only once every lease covering it has
// been released -- DiskCache::evict throws on a pinned file, so the lease
// invariant (no eviction of a leased file) is enforced at the cache layer,
// not merely by policy convention.
//
// LeaseTable is not itself thread-safe: BundleServer mutates it under its
// admission mutex, which also guards the cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/cache.hpp"
#include "service/protocol.hpp"
#include "util/ordered_mutex.hpp"

namespace fbc::service {

/// Registry of outstanding pin leases over one DiskCache.
class LeaseTable {
 public:
  /// Pins every file of `request` in `cache` and records the lease.
  /// Precondition: every file of the bundle is resident. Lease ids are
  /// dense, start at 1, and are never reused within a server lifetime.
  [[nodiscard]] LeaseId grant(const Request& request, DiskCache& cache);

  /// Unpins the lease's files and forgets it. Returns false for unknown
  /// (or already released) ids.
  bool release(LeaseId id, DiskCache& cache);

  /// Outstanding lease count.
  [[nodiscard]] std::size_t active() const noexcept { return leases_.size(); }

  /// Total leases ever granted.
  [[nodiscard]] std::uint64_t granted() const noexcept { return next_ - 1; }

  /// True when at least one active lease covers `id`.
  [[nodiscard]] bool covers(FileId id) const noexcept;

  /// The bundle held by a lease, or nullptr for unknown ids.
  [[nodiscard]] const Request* bundle(LeaseId id) const noexcept;

  /// Releases every outstanding lease (server shutdown).
  void release_all(DiskCache& cache);

  /// Read-only view of the live table, for audits.
  [[nodiscard]] const std::unordered_map<LeaseId, Request>& leases()
      const noexcept {
    return leases_;
  }

 private:
  std::unordered_map<LeaseId, Request> leases_;
  LeaseId next_ = 1;
};

/// Thread-safe sharded lease registry for the concurrent serving path.
///
/// Two independent shard arrays, each shard with its own mutex:
///   * lease shards, keyed by lease id: id -> bundle, for grant/take;
///   * file shards, keyed by file id: per-file count of covering leases,
///     so covers() is an O(1) lookup instead of a scan over every lease.
///
/// Unlike LeaseTable this class does NOT touch the DiskCache: cache pins
/// stay under the server's admission mutex (they interact with eviction
/// decisions), while the lease bookkeeping here -- the hash-map inserts,
/// Request copies and coverage counts -- runs under the small per-shard
/// locks only. Counters (granted/active) are atomics, so stats snapshots
/// never serialize against admissions. Shard locks are leaves: no method
/// acquires any other lock while holding one, so callers may invoke any
/// method while holding their own locks without ordering concerns.
class ShardedLeaseTable {
 public:
  /// `shards` is clamped to at least 1.
  explicit ShardedLeaseTable(std::size_t shards);

  /// Records a lease over `request` and returns its id (dense from 1,
  /// never reused). The caller is responsible for pinning the files.
  [[nodiscard]] LeaseId grant(const Request& request);

  /// Removes the lease and returns its bundle, or std::nullopt for
  /// unknown (or already taken) ids. The caller unpins the files.
  [[nodiscard]] std::optional<Request> take(LeaseId id);

  /// True when at least one live lease covers file `id`.
  [[nodiscard]] bool covers(FileId id) const;

  /// Number of live leases covering file `id`.
  [[nodiscard]] std::uint32_t cover_count(FileId id) const;

  /// The bundle held by a lease (copy), or std::nullopt for unknown ids.
  [[nodiscard]] std::optional<Request> bundle(LeaseId id) const;

  /// Outstanding lease count.
  [[nodiscard]] std::size_t active() const noexcept {
    return active_.load(std::memory_order_acquire);
  }

  /// Total leases ever granted.
  [[nodiscard]] std::uint64_t granted() const noexcept {
    return next_.load(std::memory_order_acquire) - 1;
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return lease_shards_.size();
  }

  /// Copy of the live table (audits; not a consistent point-in-time
  /// snapshot across shards unless the caller has quiesced mutators).
  [[nodiscard]] std::vector<std::pair<LeaseId, Request>> snapshot() const;

  /// Removes every lease and returns the bundles (server shutdown).
  std::vector<Request> take_all();

 private:
  struct LeaseShard {
    // fbc:lock-level(20)
    // fbc:guards(leases)
    mutable OrderedMutex lease_mu{20, "ShardedLeaseTable::lease_mu"};
    std::unordered_map<LeaseId, Request> leases;
  };
  struct FileShard {
    // Distinct level from lease_mu even though neither nests inside the
    // other today (grant/take drop the lease shard before touching
    // coverage): a same-level pair would make any future nesting an
    // instant violation instead of a reviewed decision.
    // fbc:lock-level(22)
    // fbc:guards(covers)
    mutable OrderedMutex file_mu{22, "ShardedLeaseTable::file_mu"};
    std::unordered_map<FileId, std::uint32_t> covers;
  };

  [[nodiscard]] LeaseShard& lease_shard(LeaseId id) noexcept {
    return lease_shards_[id % lease_shards_.size()];
  }
  [[nodiscard]] const LeaseShard& lease_shard(LeaseId id) const noexcept {
    return lease_shards_[id % lease_shards_.size()];
  }
  [[nodiscard]] FileShard& file_shard(FileId id) noexcept {
    return file_shards_[id % file_shards_.size()];
  }
  [[nodiscard]] const FileShard& file_shard(FileId id) const noexcept {
    return file_shards_[id % file_shards_.size()];
  }
  void add_cover(const Request& request);
  void drop_cover(const Request& request);

  std::vector<LeaseShard> lease_shards_;
  std::vector<FileShard> file_shards_;
  std::atomic<LeaseId> next_ = 1;
  std::atomic<std::size_t> active_ = 0;
};

}  // namespace fbc::service
