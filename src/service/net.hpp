// Minimal POSIX socket plumbing for the serving subsystem: an owning fd
// wrapper, full-buffer read/write loops that survive EINTR and short
// transfers, and frame-level send/receive built on the wire protocol.
//
// Only loopback TCP is supported deliberately -- fbcd is a measurement
// harness for the serving layer, not a hardened network daemon.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace fbc::service {

/// Owning file descriptor (close-on-destroy, move-only).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the descriptor (idempotent).
  void reset() noexcept;

  /// shutdown(SHUT_RDWR): unblocks any thread parked in read/write on this
  /// descriptor without racing the close.
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// Thrown on socket setup/teardown failures (errno text included).
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Listens on 127.0.0.1:`port` (0 picks an ephemeral port). On return
/// `*bound_port` holds the actual port.
[[nodiscard]] UniqueFd listen_loopback(std::uint16_t port,
                                       std::uint16_t* bound_port);

/// Connects to 127.0.0.1:`port`.
[[nodiscard]] UniqueFd connect_loopback(std::uint16_t port);

/// Disables Nagle on `fd` (best effort). Both connection ends need this:
/// with pipelined replies, a Nagled server socket holds its second
/// back-to-back small frame until the client's delayed ACK (~40ms on
/// Linux) -- the classic small-writes stall.
void set_nodelay(int fd) noexcept;

/// Writes all of `data`, retrying short writes and EINTR.
/// Returns false once the peer is gone (EPIPE/ECONNRESET).
[[nodiscard]] bool write_full(int fd, const std::uint8_t* data,
                              std::size_t len);

/// Reads exactly `len` bytes. Returns false on clean EOF before the first
/// byte; throws NetError on mid-buffer EOF or hard errors.
[[nodiscard]] bool read_full(int fd, std::uint8_t* data, std::size_t len);

/// Outcome of a non-blocking frame read attempt.
enum class TryRecv {
  Empty,  ///< no bytes waiting (EAGAIN before the first frame byte)
  Eof,    ///< peer closed cleanly at a frame boundary
  Got,    ///< one complete message decoded into *out
};

/// Buffered frame reader. Each recv pulls everything the kernel has, so a
/// burst of back-to-back frames from a batching peer costs one syscall
/// instead of two reads (header + payload) per frame. One reader per
/// descriptor -- bytes buffered here are invisible to recv_message.
class FrameReader {
 public:
  /// Blocking read of the next message. nullopt on clean EOF at a frame
  /// boundary; throws ProtocolError/NetError like recv_message.
  [[nodiscard]] std::optional<Message> next(int fd);

  /// Non-blocking drain: decodes a buffered frame without touching the
  /// socket when one is complete, otherwise probes with MSG_DONTWAIT.
  /// Returns Empty when no frame has started arriving. Once a frame's
  /// first bytes are in hand the remainder is completed with blocking
  /// reads (the sender writes whole frames, so it is committed).
  [[nodiscard]] TryRecv try_next(int fd, Message* out);

  /// Syscall-free drain: decodes the next frame only if it is already
  /// complete in the buffer. Under the one-outstanding-burst connection
  /// discipline this catches every frame of a burst that the last recv
  /// pulled in, without paying an EAGAIN probe for the burst's end.
  [[nodiscard]] bool buffered_next(Message* out);

 private:
  enum class Fill { Data, Empty, Eof };

  /// One recv into the tail of the buffer; Empty only when !block.
  Fill fill(int fd, bool block);
  /// Decodes one message if the buffer holds a complete frame.
  [[nodiscard]] std::optional<Message> take();
  [[nodiscard]] std::size_t have() const noexcept {
    return buf_.size() - pos_;
  }

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
};

/// Encodes and writes one frame. Returns false if the peer is gone.
[[nodiscard]] bool send_message(int fd, const Message& message);

/// Reads one frame. nullopt on clean EOF at a frame boundary; throws
/// ProtocolError on malformed frames and NetError on transport errors.
[[nodiscard]] std::optional<Message> recv_message(int fd);

}  // namespace fbc::service
