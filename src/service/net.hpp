// Minimal POSIX socket plumbing for the serving subsystem: an owning fd
// wrapper, full-buffer read/write loops that survive EINTR and short
// transfers, and frame-level send/receive built on the wire protocol.
//
// Only loopback TCP is supported deliberately -- fbcd is a measurement
// harness for the serving layer, not a hardened network daemon.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "service/protocol.hpp"

namespace fbc::service {

/// Owning file descriptor (close-on-destroy, move-only).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the descriptor (idempotent).
  void reset() noexcept;

  /// shutdown(SHUT_RDWR): unblocks any thread parked in read/write on this
  /// descriptor without racing the close.
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// Thrown on socket setup/teardown failures (errno text included).
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Listens on 127.0.0.1:`port` (0 picks an ephemeral port). On return
/// `*bound_port` holds the actual port.
[[nodiscard]] UniqueFd listen_loopback(std::uint16_t port,
                                       std::uint16_t* bound_port);

/// Connects to 127.0.0.1:`port`.
[[nodiscard]] UniqueFd connect_loopback(std::uint16_t port);

/// Writes all of `data`, retrying short writes and EINTR.
/// Returns false once the peer is gone (EPIPE/ECONNRESET).
[[nodiscard]] bool write_full(int fd, const std::uint8_t* data,
                              std::size_t len);

/// Reads exactly `len` bytes. Returns false on clean EOF before the first
/// byte; throws NetError on mid-buffer EOF or hard errors.
[[nodiscard]] bool read_full(int fd, std::uint8_t* data, std::size_t len);

/// Encodes and writes one frame. Returns false if the peer is gone.
[[nodiscard]] bool send_message(int fd, const Message& message);

/// Reads one frame. nullopt on clean EOF at a frame boundary; throws
/// ProtocolError on malformed frames and NetError on transport errors.
[[nodiscard]] std::optional<Message> recv_message(int fd);

}  // namespace fbc::service
