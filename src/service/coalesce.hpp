// FetchCoalescer: single-flight staging of files shared between
// concurrent admissions.
//
// Reservation inserts a bundle's missing files into the cache immediately
// (two-phase admit), so a second request overlapping an in-flight fetch
// sees those files "resident" and is granted without staging them again --
// there is never a duplicate MSS transfer. What WAS missing before this
// class is the wait: the second request's job would start running before
// the bytes actually arrived. The coalescer closes that gap: the fetching
// admission registers its missing files as in-flight, completes them when
// the (simulated) transfer finishes, and every other granted request whose
// bundle intersects an in-flight set blocks on that one transfer instead
// of issuing -- or skipping -- its own.
//
// The internal mutex (level 30 in the docs/SERVING.md lock hierarchy) is
// a leaf: it is never held while any other lock is taken, and waits
// happen outside the server's admission mutex entirely, so coalescing
// adds no contention to the grant path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "cache/types.hpp"
#include "util/ordered_mutex.hpp"

namespace fbc::service {

/// What one wait_for() call observed (obs wiring: the coalesced-wait
/// histogram records wait_us for calls with waited_files > 0).
struct CoalesceWait {
  std::size_t waited_files = 0;  ///< distinct in-flight files waited on
  std::uint64_t wait_us = 0;     ///< wall time blocked, microseconds
};

/// Tracks files currently being staged (see file comment). Thread-safe.
class FetchCoalescer {
 public:
  /// Marks `files` in-flight on behalf of one transfer. Files already
  /// in-flight (a re-reservation after eviction mid-flight cannot happen
  /// while leases pin them, but be defensive) are counted per owner.
  void begin_fetch(std::span<const FileId> files);

  /// Marks `files` arrived and wakes every waiter.
  void complete_fetch(std::span<const FileId> files);

  /// Blocks until no file of `files` is in-flight. Returns what was
  /// waited on; zero-valued when nothing overlapped (the fast path: one
  /// lock acquisition, no wait). May block indefinitely, so the caller
  /// must not hold the admission mutex.
  // fbc:excludes(mu_) fbc:blocking
  [[nodiscard]] CoalesceWait wait_for(std::span<const FileId> files);

  /// Total transfers begun (begin_fetch calls).
  [[nodiscard]] std::uint64_t transfers() const;

  /// Total wait_for() calls that actually blocked on an in-flight file.
  [[nodiscard]] std::uint64_t coalesced_waits() const;

  /// Files currently in-flight (tests/audit).
  [[nodiscard]] std::size_t in_flight() const;

 private:
  // fbc:lock-level(30)
  // fbc:guards(in_flight_, transfers_, coalesced_waits_)
  mutable OrderedMutex inflight_mu_{30, "FetchCoalescer::inflight_mu_"};
  std::condition_variable_any cv_;
  /// file -> number of transfers currently staging it.
  std::unordered_map<FileId, std::uint32_t> in_flight_;
  std::uint64_t transfers_ = 0;
  std::uint64_t coalesced_waits_ = 0;
};

}  // namespace fbc::service
