// BundleServer: thread-safe bundle-serving layer over the cache/policy
// stack.
//
// This is the concurrent counterpart of the single-threaded SRM loop: many
// client threads call acquire() simultaneously, each request passes through
// a bounded admission queue, and admission itself follows a two-phase
// protocol:
//
//   reserve  under the admission lock: the policy picks victims, the cache
//            evicts them and inserts the missing files, and every bundle
//            file is pinned through a LeaseTable lease -- from this instant
//            no other admission can evict the bundle;
//   fetch    outside the lock: the simulated MSS transfer runs (scaled
//            stage time, injectable failures with bounded exponential-
//            backoff retry before the reserve);
//   lease    the lease id is returned to the caller, whose job runs with
//            the bundle guaranteed resident;
//   release  release() unpins the bundle; files become evictable once the
//            last overlapping lease is gone.
//
// All *decision* logic stays in the existing engines: the replacement
// policy chooses victims exactly as in the simulator, and CacheMetrics
// does the accounting. The server owns only concurrency, queuing and
// backpressure, so invariants checked by the fuzzing oracles carry over
// unchanged (audit() re-checks them independently).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"
#include "cache/metrics.hpp"
#include "cache/policy.hpp"
#include "grid/backend.hpp"
#include "grid/transfer.hpp"
#include "obs/counter.hpp"
#include "obs/histogram.hpp"
#include "obs/span.hpp"
#include "service/lease.hpp"
#include "service/protocol.hpp"
#include "util/rng.hpp"

namespace fbc::service {

/// Order in which queued requests are admitted (the service-layer mirror
/// of the SRM's ServiceOrder).
enum class AdmitOrder {
  Fifo,          ///< strict arrival order
  ValueDensity,  ///< highest resident-byte fraction first (cheapest admit)
};

/// Parses "fifo" / "value" (throws std::invalid_argument otherwise).
[[nodiscard]] AdmitOrder parse_admit_order(const std::string& name);

/// Configuration of the serving layer. Every field here must be surfaced
/// by both the fbcd and fbcload CLIs (enforced by fbclint L003).
struct ServiceConfig {
  /// Staging cache capacity.
  Bytes cache_bytes = 1 * GiB;
  /// Replacement policy name (core/registry.hpp).
  std::string policy = "optfb";
  /// Admission queue bound; acquires beyond it are rejected with a
  /// retry-after hint instead of queuing (backpressure).
  std::size_t max_queue = 64;
  /// Admission order among queued requests.
  AdmitOrder order = AdmitOrder::Fifo;
  /// Per-request admission timeout (time waited in the queue).
  std::uint32_t timeout_ms = 30000;
  /// MSS transfer attempts beyond the first before giving up.
  std::uint32_t max_retries = 3;
  /// Base of the exponential backoff between transfer attempts; attempt k
  /// waits retry_backoff_ms * 2^(k-1), capped at 8x the base.
  std::uint32_t retry_backoff_ms = 10;
  /// Probability that one simulated MSS transfer attempt fails.
  double transfer_fail_prob = 0.0;
  /// Wall-clock seconds slept per simulated staging second (0 = no sleep;
  /// staging is instantaneous but still counted).
  double time_scale = 0.0;
  /// Parallel MSS transfer streams (grid/transfer LPT makespan).
  std::size_t transfer_streams = 4;
  /// Seed for the failure-injection RNG and stochastic policies.
  std::uint64_t seed = 1;
  /// Upper bound on the QueueFull retry-after hint; 0 means no cap beyond
  /// the UINT32_MAX saturation of the wire field.
  std::uint32_t retry_after_cap_ms = 60000;
  /// Most recent per-request spans kept for debugging (0 disables).
  std::size_t span_capacity = 1024;
};

/// Result of one acquire() call.
struct AcquireResult {
  AcquireStatus status = AcquireStatus::Ok;
  LeaseId lease = 0;
  bool request_hit = false;
  std::uint32_t retry_after_ms = 0;  ///< set when status == QueueFull
  std::uint32_t retries = 0;         ///< transfer attempts retried
};

/// Thread-safe bundle-serving layer (see file comment).
class BundleServer {
 public:
  /// `mss` must outlive the server. Throws std::invalid_argument for a
  /// zero queue bound or an unknown policy name.
  BundleServer(const ServiceConfig& config, const StorageBackend& mss);
  ~BundleServer();

  BundleServer(const BundleServer&) = delete;
  BundleServer& operator=(const BundleServer&) = delete;

  /// Blocks until the bundle is resident and leased, the queue rejects it,
  /// or the timeout expires. Safe to call from any number of threads.
  [[nodiscard]] AcquireResult acquire(const Request& request);

  /// Releases a lease. Returns false for unknown ids. Wakes queued
  /// admissions that were waiting for pinned bytes to free up.
  bool release(LeaseId lease);

  /// Wakes every queued waiter with AcquireStatus::Closed and rejects
  /// future acquires. release()/stats()/audit() keep working.
  void close();

  /// Consistent counter snapshot.
  [[nodiscard]] ServiceStats stats() const;

  /// Full observability snapshot: stats() plus named counters and the
  /// per-stage latency/size histograms (the MsgType::MetricsReply body).
  /// Histogram counts tie to stats() once in-flight acquires have
  /// returned: every acquire.* duration histogram then holds exactly
  /// `requests` observations and lease.hold_us holds `leases_released`.
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Most recent per-request spans, oldest first (bounded by
  /// ServiceConfig::span_capacity).
  [[nodiscard]] std::vector<obs::ServingSpan> spans() const {
    return spans_.snapshot();
  }

  /// Independently re-checks the serving invariants (capacity accounting,
  /// lease pinning, residency of leased bundles, counter consistency) and
  /// returns human-readable violations -- empty when healthy. The checks
  /// mirror testing::InvariantAuditor's classes.
  [[nodiscard]] std::vector<std::string> audit() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Waiter {
    const Request* request = nullptr;
    Bytes bundle_bytes = 0;
    std::uint64_t admissions_at_enqueue = 0;
  };

  /// Index into queue_ of the next request to admit under config_.order.
  [[nodiscard]] std::size_t choose_locked() const;

  /// True when `request` could be admitted right now: its missing bytes
  /// fit into free space plus what evicting every unpinned non-bundle
  /// resident file would release.
  [[nodiscard]] bool fits_locked(const Request& request) const;

  /// Evicts victims, inserts missing files, grants the lease and records
  /// metrics. Returns the simulated staging seconds through `stage_s`.
  LeaseId admit_locked(const Request& request, Bytes bundle_bytes,
                       bool* request_hit, double* stage_s);

  /// Counts the outcome under obs_mu_ and records the span. Duration
  /// histograms are recorded separately (Ok grants only) so their counts
  /// tie exactly to stats().requests.
  void finish_span(obs::ServingSpan span, AcquireStatus status,
                   std::string_view counter);

  ServiceConfig config_;
  const StorageBackend* mss_;
  TransferModel transfers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  DiskCache cache_;
  PolicyPtr policy_;
  CacheMetrics metrics_;
  LeaseTable leases_;
  Rng fail_rng_;
  std::deque<Waiter*> queue_;
  std::uint64_t admissions_ = 0;
  std::uint64_t rejected_full_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t invalid_ = 0;
  std::uint64_t transfer_retries_ = 0;
  std::uint64_t transfer_failures_ = 0;
  std::uint64_t released_ = 0;
  bool closed_ = false;
  /// Grant instant of each live lease, for the lease.hold_us histogram.
  /// Guarded by mu_; lookups only (fbclint L005: never iterated).
  std::unordered_map<LeaseId, std::chrono::steady_clock::time_point>
      grant_times_;

  std::atomic<std::uint64_t> request_seq_ = 0;

  /// Observability state. Guarded by obs_mu_, which is always acquired
  /// *after* mu_ (never the reverse) and held only for O(1) recording.
  mutable std::mutex obs_mu_;
  obs::CounterRegistry counters_;  ///< acquire.* / release.* outcomes
  obs::Histogram queue_us_;        ///< enqueue -> admission decision
  obs::Histogram reserve_us_;      ///< admission -> space reserved + leased
  obs::Histogram fetch_us_;        ///< reserve -> bundle resident
  obs::Histogram total_us_;        ///< enqueue -> grant
  obs::Histogram hold_us_;         ///< grant -> release
  obs::Histogram queue_depth_;     ///< waiters ahead at enqueue
  obs::SpanRecorder spans_;        ///< bounded ring (config.span_capacity)
};

}  // namespace fbc::service
