// BundleServer: thread-safe bundle-serving layer over the cache/policy
// stack.
//
// This is the concurrent counterpart of the single-threaded SRM loop: many
// client threads call acquire() simultaneously, each request passes through
// a bounded admission queue, and admission itself follows a two-phase
// protocol:
//
//   reserve  under the admission lock: the policy picks victims, the cache
//            evicts them and inserts the missing files, and every bundle
//            file is pinned through a lease -- from this instant no other
//            admission can evict the bundle;
//   fetch    outside the lock: the simulated MSS transfer runs (scaled
//            stage time, injectable failures with bounded exponential-
//            backoff retry before the reserve); concurrent admissions
//            whose bundles overlap an in-flight transfer wait on that one
//            transfer through the FetchCoalescer instead of starting
//            their jobs before the bytes arrive;
//   lease    the lease id is returned to the caller, whose job runs with
//            the bundle guaranteed resident;
//   release  release() unpins the bundle; files become evictable once the
//            last overlapping lease is gone.
//
// Admission is *batched*: whichever waiter thread holds the admission
// mutex drains up to ServiceConfig::admission_batch queued entries in one
// pass (drain_locked), admitting each in exactly the order the serial
// one-at-a-time server would (choose_locked per entry, FIFO or
// value-density), granting the lease, and handing the entry back to its
// own thread for the fetch phase. One lock acquisition -- and, with the
// incremental selection engine, one cheap dirty-entry rescore -- is
// amortized across up to k grants. Batching is decision-equivalent to
// admission_batch=1 by construction: the per-entry choose/fit/admit
// sequence is byte-identical, only the lock round-trips between entries
// disappear (testing/sched_sim pins this equivalence).
//
// All *decision* logic stays in the existing engines: the replacement
// policy chooses victims exactly as in the simulator (ServiceConfig::
// engine selects the reference or incremental OptFileBundle selector,
// and shadow_diff runs both in lock-step, asserting bit-identical
// decisions), and CacheMetrics does the accounting. The server owns only
// concurrency, queuing and backpressure, so invariants checked by the
// fuzzing oracles carry over unchanged (audit() re-checks them
// independently).
//
// Lock order: see the "Lock hierarchy" table in docs/SERVING.md. Every
// mutex in this layer is a util/ordered_mutex.hpp OrderedMutex carrying
// its level from that table; fbclint L007 checks the order statically
// from the fbc:lock-level annotations below, and FBC_LOCK_CHECK builds
// abort at runtime on any inversion.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"
#include "cache/metrics.hpp"
#include "cache/policy.hpp"
#include "core/registry.hpp"
#include "grid/backend.hpp"
#include "grid/transfer.hpp"
#include "obs/counter.hpp"
#include "obs/histogram.hpp"
#include "obs/span.hpp"
#include "service/coalesce.hpp"
#include "service/endpoint.hpp"
#include "service/lease.hpp"
#include "service/protocol.hpp"
#include "util/ordered_mutex.hpp"
#include "util/rng.hpp"

namespace fbc::service {

/// Order in which queued requests are admitted (the service-layer mirror
/// of the SRM's ServiceOrder).
enum class AdmitOrder {
  Fifo,          ///< strict arrival order
  ValueDensity,  ///< highest resident-byte fraction first (cheapest admit)
};

/// Parses "fifo" / "value" (throws std::invalid_argument otherwise).
[[nodiscard]] AdmitOrder parse_admit_order(const std::string& name);

/// Configuration of the serving layer. Every field here must be surfaced
/// by both the fbcd and fbcload CLIs (enforced by fbclint L003).
struct ServiceConfig {
  /// Staging cache capacity.
  Bytes cache_bytes = 1 * GiB;
  /// Replacement policy name (core/registry.hpp).
  std::string policy = "optfb";
  /// Admission queue bound; acquires beyond it are rejected with a
  /// retry-after hint instead of queuing (backpressure).
  std::size_t max_queue = 64;
  /// Admission order among queued requests.
  AdmitOrder order = AdmitOrder::Fifo;
  /// Per-request admission timeout (time waited in the queue).
  std::uint32_t timeout_ms = 30000;
  /// MSS transfer attempts beyond the first before giving up.
  std::uint32_t max_retries = 3;
  /// Base of the exponential backoff between transfer attempts; attempt k
  /// waits retry_backoff_ms * 2^(k-1), capped at 8x the base.
  std::uint32_t retry_backoff_ms = 10;
  /// Probability that one simulated MSS transfer attempt fails.
  double transfer_fail_prob = 0.0;
  /// Wall-clock seconds slept per simulated staging second (0 = no sleep;
  /// staging is instantaneous but still counted).
  double time_scale = 0.0;
  /// Parallel MSS transfer streams (grid/transfer LPT makespan).
  std::size_t transfer_streams = 4;
  /// Seed for the failure-injection RNG and stochastic policies.
  std::uint64_t seed = 1;
  /// Upper bound on the QueueFull retry-after hint; 0 means no cap beyond
  /// the UINT32_MAX saturation of the wire field.
  std::uint32_t retry_after_cap_ms = 60000;
  /// Most recent per-request spans kept for debugging (0 disables).
  std::size_t span_capacity = 1024;
  /// Selection engine for optfb* policies. The serving hot path defaults
  /// to Incremental (per-decision cost stays ~flat as the history grows);
  /// shadow_diff and the sched_sim equivalence suites pin its decisions
  /// against the Reference engine.
  SelectEngine engine = SelectEngine::Incremental;
  /// Queue entries admitted per drain pass under one admission-lock hold
  /// (the paper's admission-queue scheduling section, batched): 1 replays
  /// the serial one-at-a-time server exactly; larger values amortize the
  /// lock and the selection re-score across up to this many grants with
  /// identical decisions.
  std::size_t admission_batch = 8;
  /// Shards of the lease table (lease- and file-keyed maps); lease
  /// bookkeeping locks are per-shard, never the admission mutex.
  std::size_t lease_shards = 16;
  /// Coalesce concurrent fetches: a granted request whose bundle overlaps
  /// a transfer still in flight waits for that transfer instead of
  /// starting its job before the bytes arrive (0 disables, restoring the
  /// pre-coalescing fire-and-forget grant).
  bool coalesce = true;
  /// Debug/test builds: run the Reference engine in lock-step shadow next
  /// to the configured one and assert bit-identical decisions (requires a
  /// policy_factory that honors it, e.g. the serving tools' --shadow-diff
  /// wiring through testing::make_shadow_policy; a divergence throws out
  /// of acquire()).
  bool shadow_diff = false;
  /// Pre-batching wire loop: one frame per recv pair and one send per
  /// reply, exactly the serial transport this PR series replaced. The
  /// serving bench gate runs its baseline leg with this on so the
  /// speedup is measured against the old stack, not a hybrid.
  bool legacy_wire = false;
  /// Position of this server in its cluster (reported in HelloReply);
  /// 0 for a standalone fbcd.
  std::uint32_t shard_id = 0;
  /// Optional policy constructor override. When set, the server builds
  /// its replacement policy through this hook instead of make_policy --
  /// the seam the shadow_diff mode and the deterministic test harness use
  /// to inject instrumented policies without the service library
  /// depending on the testing library.
  std::function<PolicyPtr(const std::string&, const PolicyContext&)>
      policy_factory;
};

/// Thread-safe bundle-serving layer (see file comment).
class BundleServer : public ServingEndpoint {
 public:
  /// `mss` must outlive the server. Throws std::invalid_argument for a
  /// zero queue bound or an unknown policy name.
  BundleServer(const ServiceConfig& config, const StorageBackend& mss);
  ~BundleServer() override;

  BundleServer(const BundleServer&) = delete;
  BundleServer& operator=(const BundleServer&) = delete;

  /// Blocks until the bundle is resident and leased, the queue rejects it,
  /// or the timeout expires. Safe to call from any number of threads.
  [[nodiscard]] AcquireResult acquire(const Request& request) override;

  /// Releases a lease. Returns false for unknown ids. Wakes queued
  /// admissions that were waiting for pinned bytes to free up.
  bool release(LeaseId lease) override;

  /// Wakes every queued waiter with AcquireStatus::Closed and rejects
  /// future acquires. release()/stats()/audit() keep working.
  void close() override;

  /// Test hook for the deterministic scheduling harness: while paused, no
  /// drain pass runs, so acquires enqueue (or reject on a full queue) but
  /// never admit. Unpausing wakes every waiter and drains normally. The
  /// hook makes queue composition -- and therefore the admission order,
  /// which is a pure function of queue content under mu_ -- independent
  /// of thread scheduling.
  void set_admission_paused(bool paused);

  [[nodiscard]] bool admission_paused() const;

  /// Consistent counter snapshot.
  [[nodiscard]] ServiceStats stats() const override;

  /// Full observability snapshot: stats() plus named counters and the
  /// per-stage latency/size histograms (the MsgType::MetricsReply body).
  /// Histogram counts tie to stats() once in-flight acquires have
  /// returned: every acquire.{queue,reserve,fetch,total}_us histogram
  /// then holds exactly `requests` observations and lease.hold_us holds
  /// `leases_released`. acquire.coalesce_us counts only grants that
  /// blocked on an overlapping transfer, and admit.batch_size counts
  /// drain passes that admitted at least one waiter.
  [[nodiscard]] MetricsSnapshot metrics() const override;

  /// A single shard: shard_id from the config, shard_count 1.
  [[nodiscard]] EndpointInfo info() const override {
    return {EndpointRole::Shard, config_.shard_id, 1};
  }

  [[nodiscard]] bool legacy_wire() const override {
    return config_.legacy_wire;
  }

  /// Sorted snapshot of the resident file set. The deterministic
  /// scheduling harness (testing/sched_sim) compares this as the "final
  /// cache state" between batched and serial replays of one schedule.
  [[nodiscard]] std::vector<FileId> resident_files() const;

  /// Most recent per-request spans, oldest first (bounded by
  /// ServiceConfig::span_capacity).
  [[nodiscard]] std::vector<obs::ServingSpan> spans() const {
    return spans_.snapshot();
  }

  /// Independently re-checks the serving invariants (capacity accounting,
  /// lease pinning, residency of leased bundles, counter consistency) and
  /// returns human-readable violations -- empty when healthy. The checks
  /// mirror testing::InvariantAuditor's classes.
  [[nodiscard]] std::vector<std::string> audit() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Waiter {
    enum class State {
      Queued,    ///< in queue_, not yet admitted
      Admitted,  ///< reserved + leased by a drain pass; owner runs the fetch
      Backoff,   ///< failed a transfer draw; sleeping before re-queueing
    };

    const Request* request = nullptr;
    Bytes bundle_bytes = 0;
    std::uint64_t admissions_at_enqueue = 0;
    State state = State::Queued;
    /// Outcome of admission, filled in by the draining thread (which may
    /// be a different thread than the waiter's own) under mu_.
    LeaseId lease = 0;
    bool request_hit = false;
    double stage_s = 0.0;
    Bytes missing_bytes = 0;
    /// Files this admission actually stages (missing at reserve time);
    /// the coalescer keys in-flight transfers on them.
    std::vector<FileId> fetched;
    std::uint32_t failed_attempts = 0;
    /// Stage boundary instants stamped by the draining thread so span
    /// timings survive batched admission (the waiter may be asleep in
    /// cv_.wait while another thread admits it).
    std::chrono::steady_clock::time_point t_admit{};
    std::chrono::steady_clock::time_point t_reserved{};
  };

  /// Index into queue_ of the next request to admit under config_.order.
  // fbc:requires(mu_)
  [[nodiscard]] std::size_t choose_locked() const;

  /// True when `request` could be admitted right now: its missing bytes
  /// fit into free space plus what evicting every unpinned non-bundle
  /// resident file would release.
  // fbc:requires(mu_)
  [[nodiscard]] bool fits_locked(const Request& request) const;

  /// Admits up to config_.admission_batch queued waiters in the exact
  /// order the serial server would (choose_locked -> failure draw ->
  /// fits_locked -> admit), marking each Admitted and notifying. Stops
  /// early when the chosen head does not fit, is backing off, or fails
  /// its transfer draw (head-of-line semantics are part of the decision
  /// contract). Returns the number admitted.
  // fbc:requires(mu_)
  std::size_t drain_locked();

  /// Evicts victims, inserts missing files, grants the lease and records
  /// metrics. Returns the simulated staging seconds through `stage_s`.
  // fbc:requires(mu_)
  LeaseId admit_locked(const Request& request, Bytes bundle_bytes,
                       bool* request_hit, double* stage_s,
                       std::vector<FileId>* fetched, Bytes* missing_bytes);

  /// Counts the outcome under obs_mu_ and records the span (error paths;
  /// the Ok-grant path folds its counter bump into the same obs_mu_
  /// section as the duration histograms so a grant costs one lock).
  void finish_span(obs::ServingSpan span, AcquireStatus status,
                   std::string_view counter);

  ServiceConfig config_;
  const StorageBackend* mss_;
  TransferModel transfers_;

  // Admission lock (level 10 in the docs/SERVING.md lock hierarchy).
  // fbc:lock-level(10)
  // fbc:guards(cache_, policy_, metrics_, fail_rng_, queue_, admissions_)
  // fbc:guards(rejected_full_, timed_out_, invalid_, transfer_retries_)
  // fbc:guards(transfer_failures_, released_, closed_, paused_, grant_times_)
  mutable OrderedMutex mu_{10, "BundleServer::mu_"};
  std::condition_variable_any cv_;
  DiskCache cache_;
  PolicyPtr policy_;
  CacheMetrics metrics_;
  ShardedLeaseTable leases_;
  FetchCoalescer coalescer_;
  Rng fail_rng_;
  std::deque<Waiter*> queue_;
  std::uint64_t admissions_ = 0;
  std::uint64_t rejected_full_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t invalid_ = 0;
  std::uint64_t transfer_retries_ = 0;
  std::uint64_t transfer_failures_ = 0;
  std::uint64_t released_ = 0;
  bool closed_ = false;
  bool paused_ = false;  ///< test hook: freeze drain passes (see setter)
  /// Grant instant of each live lease, for the lease.hold_us histogram.
  /// Guarded by mu_; lookups only (fbclint L005: never iterated).
  std::unordered_map<LeaseId, std::chrono::steady_clock::time_point>
      grant_times_;

  std::atomic<std::uint64_t> request_seq_ = 0;

  /// Observability state. Guarded by obs_mu_, which is always acquired
  /// *after* mu_ (never the reverse -- level 40 vs 10) and held only for
  /// O(1) recording.
  // fbc:lock-level(40)
  // fbc:guards(counters_, queue_us_, reserve_us_, fetch_us_, coalesce_us_)
  // fbc:guards(total_us_, hold_us_, queue_depth_, batch_size_)
  // fbc:guards(acquire_ok_slot_, release_ok_slot_, release_unknown_slot_)
  // fbc:guards(transfers_slot_, coalesced_slot_)
  mutable OrderedMutex obs_mu_{40, "BundleServer::obs_mu_"};
  obs::CounterRegistry counters_;  ///< acquire.* / release.* outcomes
  obs::Histogram queue_us_;        ///< enqueue -> admission decision
  obs::Histogram reserve_us_;      ///< admission -> space reserved + leased
  obs::Histogram fetch_us_;        ///< reserve -> bundle resident
  obs::Histogram coalesce_us_;     ///< blocked on an overlapping transfer
  obs::Histogram total_us_;        ///< enqueue -> grant
  obs::Histogram hold_us_;         ///< grant -> release
  obs::Histogram queue_depth_;     ///< waiters ahead at enqueue
  obs::Histogram batch_size_;      ///< admissions per non-empty drain pass
  obs::SpanRecorder spans_;        ///< bounded ring (config.span_capacity)
  /// Pre-resolved cells for the per-grant counters (CounterRegistry::slot
  /// pointers into counters_; map nodes are stable). Bumped under obs_mu_
  /// exactly like counters_.add(), minus the string lookup per request.
  std::uint64_t* acquire_ok_slot_;
  std::uint64_t* release_ok_slot_;
  std::uint64_t* release_unknown_slot_;
  std::uint64_t* transfers_slot_;
  std::uint64_t* coalesced_slot_;
};

}  // namespace fbc::service
