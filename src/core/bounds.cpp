#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <vector>

namespace fbc {

double seeded_bound_factor(std::uint32_t d) noexcept {
  const double dd = d == 0 ? 1.0 : static_cast<double>(d);
  return 1.0 - std::exp(-1.0 / dd);
}

double greedy_bound_factor(std::uint32_t d) noexcept {
  return 0.5 * seeded_bound_factor(d);
}

std::uint32_t max_file_degree(std::span<const SelectionItem> items) {
  std::unordered_map<FileId, std::uint32_t> degree;
  std::uint32_t max_degree = 0;
  for (const SelectionItem& item : items) {
    if (item.request == nullptr) continue;
    for (FileId id : item.request->files) {
      max_degree = std::max(max_degree, ++degree[id]);
    }
  }
  return max_degree;
}

RepeatBound clairvoyant_upper_bound(const FileCatalog& catalog,
                                    std::span<const Request> jobs,
                                    Bytes capacity) {
  RepeatBound bound;
  std::vector<char> seen(catalog.count(), 0);
  std::vector<std::uint64_t> degree(catalog.count(), 0);
  for (const Request& job : jobs) {
    const Bytes bundle = catalog.request_bytes(job);
    bool hit = bundle <= capacity;
    if (hit) {
      for (FileId f : job.files) {
        if (seen[f] == 0) {
          hit = false;
          break;
        }
      }
    }
    for (FileId f : job.files) {
      seen[f] = 1;
      ++degree[f];
    }
    if (hit) {
      // Degree-adjusted density with d(f) including this occurrence,
      // matching BundleOPTgen's accounting.
      double denom = 0.0;
      for (FileId f : job.files) {
        denom += static_cast<double>(catalog.size_of(f)) /
                 static_cast<double>(degree[f]);
      }
      ++bound.hits;
      bound.hit_bytes += bundle;
      bound.density_value +=
          denom > 0.0 ? static_cast<double>(bundle) / denom : 0.0;
    }
  }
  return bound;
}

std::uint64_t naive_repeat_upper_bound(std::span<const Request> jobs) {
  std::uint64_t hits = 0;
  std::set<std::vector<FileId>> seen;
  for (const Request& job : jobs) {
    if (!seen.insert(job.files).second) ++hits;
  }
  return hits;
}

}  // namespace fbc
