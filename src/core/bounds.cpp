#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace fbc {

double seeded_bound_factor(std::uint32_t d) noexcept {
  const double dd = d == 0 ? 1.0 : static_cast<double>(d);
  return 1.0 - std::exp(-1.0 / dd);
}

double greedy_bound_factor(std::uint32_t d) noexcept {
  return 0.5 * seeded_bound_factor(d);
}

std::uint32_t max_file_degree(std::span<const SelectionItem> items) {
  std::unordered_map<FileId, std::uint32_t> degree;
  std::uint32_t max_degree = 0;
  for (const SelectionItem& item : items) {
    if (item.request == nullptr) continue;
    for (FileId id : item.request->files) {
      max_degree = std::max(max_degree, ++degree[id]);
    }
  }
  return max_degree;
}

}  // namespace fbc
