#include "core/request_history.hpp"

#include <algorithm>

namespace fbc {

std::string to_string(HistoryMode mode) {
  switch (mode) {
    case HistoryMode::Full: return "full";
    case HistoryMode::Window: return "window";
    case HistoryMode::CacheResident: return "cache-resident";
  }
  return "?";
}

RequestHistory::RequestHistory(const FileCatalog& catalog,
                               RequestHistoryConfig config)
    : catalog_(&catalog), config_(config) {
  degree_.resize(catalog.count(), 0);
}

void RequestHistory::observe(const Request& request, double weight) {
  ++observed_jobs_;
  auto [it, inserted] = index_.try_emplace(request, entries_.size());
  if (inserted) {
    entries_.push_back(HistoryEntry{request, weight, observed_jobs_});
    if (journaling_) {
      journal_.added.push_back(entries_.size() - 1);
      for (FileId id : request.files) journal_.degree_deltas.emplace_back(id, 1);
    }
    for (FileId id : request.files) {
      if (degree_.size() <= id) degree_.resize(id + 1, 0);
      max_degree_ = std::max(max_degree_, ++degree_[id]);
    }
    if (config_.max_entries > 0 && entries_.size() > config_.max_entries) {
      compact();
    }
  } else {
    HistoryEntry& entry = entries_[it->second];
    entry.value += weight;
    entry.last_seen = observed_jobs_;
    if (journaling_) journal_.value_dirty.push_back(it->second);
  }
}

void RequestHistory::recompute_max_degree() noexcept {
  max_degree_ = 0;
  for (std::uint32_t d : degree_) max_degree_ = std::max(max_degree_, d);
}

void RequestHistory::compact() {
  // Keep the top 3/4 of entries by (value desc, recency desc); drop the
  // rest and remove their files from the degree table.
  const std::size_t keep = config_.max_entries - config_.max_entries / 4;
  std::vector<std::size_t> order(entries_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::nth_element(
      order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep),
      order.end(), [this](std::size_t a, std::size_t b) {
        if (entries_[a].value != entries_[b].value)
          return entries_[a].value > entries_[b].value;
        return entries_[a].last_seen > entries_[b].last_seen;
      });
  order.resize(keep);
  std::sort(order.begin(), order.end());  // preserve insertion order

  std::vector<bool> keep_flag(entries_.size(), false);
  for (std::size_t i : order) keep_flag[i] = true;

  std::vector<HistoryEntry> surviving;
  surviving.reserve(keep);
  index_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (keep_flag[i]) {
      index_.emplace(entries_[i].request, surviving.size());
      surviving.push_back(std::move(entries_[i]));
    } else {
      // Dropped entries must leave the journal too, or a consumer's degree
      // table silently drifts from the recount (the staleness bug the
      // incremental engine exposed: degrees fed stale adjusted sizes).
      if (journaling_) {
        for (FileId id : entries_[i].request.files) {
          journal_.degree_deltas.emplace_back(id, -1);
        }
        ++journal_.dropped;
      }
      for (FileId id : entries_[i].request.files) --degree_[id];
    }
  }
  entries_ = std::move(surviving);
  recompute_max_degree();
  if (journaling_) journal_.remapped = true;
}

std::uint32_t RequestHistory::degree(FileId id) const noexcept {
  return id < degree_.size() ? degree_[id] : 0;
}

std::uint32_t RequestHistory::max_degree() const noexcept {
  return max_degree_;
}

double RequestHistory::adjusted_size(FileId id) const noexcept {
  const std::uint32_t d = std::max<std::uint32_t>(1, degree(id));
  return static_cast<double>(catalog_->size_of(id)) / static_cast<double>(d);
}

double RequestHistory::adjusted_bundle_size(
    std::span<const FileId> files) const noexcept {
  double total = 0.0;
  for (FileId id : files) total += adjusted_size(id);
  return total;
}

double RequestHistory::value(const Request& request) const noexcept {
  const auto it = index_.find(request);
  return it == index_.end() ? 0.0 : entries_[it->second].value;
}

double RequestHistory::relative_value(const Request& request,
                                      double extra_weight) const noexcept {
  const double v = value(request) + extra_weight;
  if (v <= 0.0) return 0.0;
  const double denom = adjusted_bundle_size(request.files);
  return denom > 0.0 ? v / denom : 0.0;
}

std::vector<const HistoryEntry*> RequestHistory::candidates(
    const DiskCache& cache, const Request* exclude) const {
  std::vector<const HistoryEntry*> result;
  result.reserve(entries_.size());
  for (const HistoryEntry& entry : entries_) {
    if (exclude != nullptr && entry.request == *exclude) continue;
    switch (config_.mode) {
      case HistoryMode::Full:
        break;
      case HistoryMode::Window:
        if (entry.last_seen + config_.window_jobs <= observed_jobs_) continue;
        break;
      case HistoryMode::CacheResident:
        if (!cache.supports(entry.request)) continue;
        break;
    }
    result.push_back(&entry);
  }
  return result;
}

void RequestHistory::set_journaling(bool enabled) {
  journaling_ = enabled;
  journal_.clear();
}

std::size_t RequestHistory::entry_index(
    const Request& request) const noexcept {
  const auto it = index_.find(request);
  return it == index_.end() ? SIZE_MAX : it->second;
}

void RequestHistory::clear() {
  index_.clear();
  entries_.clear();
  std::fill(degree_.begin(), degree_.end(), 0);
  max_degree_ = 0;
  observed_jobs_ = 0;
  journal_.clear();
  if (journaling_) journal_.remapped = true;
}

}  // namespace fbc
