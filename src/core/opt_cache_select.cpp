#include "core/opt_cache_select.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>

namespace fbc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool is_free(std::span<const FileId> free_sorted, FileId id) noexcept {
  return std::binary_search(free_sorted.begin(), free_sorted.end(), id);
}

/// Collects the sorted union of the chosen items' files minus the free set
/// and fills result.files / result.file_bytes.
void finalize_files(const FileCatalog& catalog,
                    std::span<const SelectionItem> items,
                    std::span<const FileId> free_sorted,
                    SelectionResult& result) {
  std::vector<FileId> files;
  for (std::size_t idx : result.chosen) {
    for (FileId id : items[idx].request->files) {
      if (!is_free(free_sorted, id)) files.push_back(id);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  result.file_bytes = catalog.bundle_bytes(files);
  result.files = std::move(files);
}

}  // namespace

std::string to_string(SelectVariant variant) {
  switch (variant) {
    case SelectVariant::Basic: return "basic";
    case SelectVariant::Resort: return "resort";
    case SelectVariant::Seeded1: return "seeded1";
    case SelectVariant::Seeded2: return "seeded2";
  }
  return "?";
}

double OptCacheSelect::adjusted_size(FileId id) const noexcept {
  const std::uint32_t d =
      id < degrees_.size() ? std::max<std::uint32_t>(1, degrees_[id]) : 1;
  return static_cast<double>(catalog_->size_of(id)) / static_cast<double>(d);
}

void OptCacheSelect::apply_single_override(
    std::span<const SelectionItem> items, Bytes capacity,
    std::span<const FileId> free_sorted, SelectionResult& result) const {
  // Algorithm 1 step 3: the greedy set competes with the single
  // highest-value request that fits on its own.
  double best_value = 0.0;
  std::size_t best_idx = items.size();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].value <= best_value) continue;
    Bytes alone = 0;
    for (FileId id : items[i].request->files) {
      if (!is_free(free_sorted, id)) alone += catalog_->size_of(id);
    }
    if (alone <= capacity) {
      best_value = items[i].value;
      best_idx = i;
    }
  }
  if (best_idx < items.size() && best_value > result.total_value) {
    result.chosen = {best_idx};
    result.total_value = best_value;
    result.single_request_override = true;
    finalize_files(*catalog_, items, free_sorted, result);
  }
}

SelectionResult OptCacheSelect::select_basic(
    std::span<const SelectionItem> items, Bytes capacity,
    std::span<const FileId> free_sorted, SelectionCost* cost) const {
  const std::size_t n = items.size();
  if (cost != nullptr) cost->entries_rescored += n;
  std::vector<double> rank(n);
  std::vector<Bytes> real_size(n);
  for (std::size_t i = 0; i < n; ++i) {
    double adj = 0.0;
    Bytes real = 0;
    for (FileId id : items[i].request->files) {
      if (is_free(free_sorted, id)) continue;
      adj += adjusted_size(id);
      real += catalog_->size_of(id);
    }
    real_size[i] = real;
    if (items[i].value <= 0.0) {
      rank[i] = -kInf;  // worthless items are never picked
    } else {
      rank[i] = adj > 0.0 ? items[i].value / adj : kInf;
    }
  }

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return a < b;
  });

  SelectionResult result;
  Bytes remaining = capacity;
  for (std::size_t idx : order) {
    if (rank[idx] == -kInf) break;  // the rest are worthless too
    // Algorithm 1 step 2 uses the request's full (non-free) size even when
    // some of its files were already loaded by earlier selections -- the
    // Resort variant fixes exactly this.
    if (real_size[idx] <= remaining) {
      remaining -= real_size[idx];
      result.chosen.push_back(idx);
      result.total_value += items[idx].value;
    }
  }
  finalize_files(*catalog_, items, free_sorted, result);
  apply_single_override(items, capacity, free_sorted, result);
  return result;
}

SelectionResult OptCacheSelect::select_resort(
    std::span<const SelectionItem> items, Bytes capacity,
    std::span<const FileId> free_sorted, std::span<const std::size_t> seed,
    SelectionCost* cost) const {
  const std::size_t n = items.size();
  if (cost != nullptr) cost->entries_rescored += n;
  std::uint64_t heap_ops = 0;

  // Per-item remaining (uncovered) adjusted and real sizes, maintained
  // incrementally as files become covered.
  std::vector<double> adj(n, 0.0);
  std::vector<Bytes> real(n, 0);
  std::unordered_map<FileId, std::vector<std::uint32_t>> inverted;
  for (std::size_t i = 0; i < n; ++i) {
    for (FileId id : items[i].request->files) {
      if (is_free(free_sorted, id)) continue;
      adj[i] += adjusted_size(id);
      real[i] += catalog_->size_of(id);
      inverted[id].push_back(static_cast<std::uint32_t>(i));
    }
  }

  std::vector<bool> selected(n, false), dead(n, false);
  std::vector<std::uint32_t> version(n, 0);
  std::vector<bool> covered_flag;  // lazily grown, indexed by FileId

  auto covered = [&](FileId id) {
    return id < covered_flag.size() && covered_flag[id];
  };

  struct HeapEntry {
    double key;
    std::uint32_t idx;
    std::uint32_t version;
  };
  auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.key != b.key) return a.key < b.key;  // max-heap by key
    return a.idx > b.idx;                      // then lowest index first
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);

  auto key_of = [&](std::size_t i) {
    return adj[i] > 0.0 ? items[i].value / adj[i] : kInf;
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (items[i].value <= 0.0) {
      dead[i] = true;
      continue;
    }
    heap.push(HeapEntry{key_of(i), static_cast<std::uint32_t>(i), 0});
    ++heap_ops;
  }

  SelectionResult result;
  Bytes remaining = capacity;

  auto take = [&](std::size_t i) {
    selected[i] = true;
    remaining -= real[i];
    result.chosen.push_back(i);
    result.total_value += items[i].value;
    for (FileId id : items[i].request->files) {
      if (is_free(free_sorted, id) || covered(id)) continue;
      if (covered_flag.size() <= id) covered_flag.resize(id + 1, false);
      covered_flag[id] = true;
      const double s_adj = adjusted_size(id);
      const Bytes s_real = catalog_->size_of(id);
      const auto inv_it = inverted.find(id);
      if (inv_it == inverted.end()) continue;
      for (std::uint32_t j : inv_it->second) {
        if (j == i || selected[j] || dead[j]) continue;
        adj[j] -= s_adj;
        real[j] -= s_real;
        ++version[j];
        heap.push(HeapEntry{key_of(j), j, version[j]});
        ++heap_ops;
      }
    }
  };

  // Forced seed (Seeded1/Seeded2 enumeration). An infeasible seed is
  // signalled with total_value = -1 so the caller can skip it; item values
  // are popularity counts and therefore never negative.
  for (std::size_t idx : seed) {
    if (selected[idx]) continue;
    if (real[idx] > remaining) {
      if (cost != nullptr) cost->heap_ops += heap_ops;
      SelectionResult infeasible;
      infeasible.total_value = -1.0;
      return infeasible;
    }
    take(idx);
  }

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    ++heap_ops;
    const std::size_t i = top.idx;
    if (top.version != version[i] || selected[i] || dead[i]) continue;
    if (real[i] > remaining) {
      // Skipped for lack of space, as in Algorithm 1 step 2.
      dead[i] = true;
      continue;
    }
    take(i);
  }
  if (cost != nullptr) cost->heap_ops += heap_ops;

  finalize_files(*catalog_, items, free_sorted, result);
  if (seed.empty()) {
    apply_single_override(items, capacity, free_sorted, result);
  }
  return result;
}

SelectionResult OptCacheSelect::select_seeded(
    std::span<const SelectionItem> items, Bytes capacity,
    std::span<const FileId> free_sorted, int k, SelectionCost* cost) const {
  // Baseline: the plain greedy (which already includes the step-3 single
  // request comparison).
  SelectionResult best = select_resort(items, capacity, free_sorted, {}, cost);

  const std::size_t n = items.size();
  std::vector<std::size_t> seed;
  auto consider = [&](std::span<const std::size_t> forced) {
    SelectionResult candidate =
        select_resort(items, capacity, free_sorted, forced, cost);
    if (candidate.total_value > best.total_value) best = std::move(candidate);
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (items[i].value <= 0.0) continue;
    seed = {i};
    consider(seed);
    if (k >= 2) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (items[j].value <= 0.0) continue;
        seed = {i, j};
        consider(seed);
      }
    }
  }
  return best;
}

SelectionResult OptCacheSelect::select(std::span<const SelectionItem> items,
                                       Bytes capacity, SelectVariant variant,
                                       std::span<const FileId> free_files,
                                       SelectionCost* cost) const {
  for (const SelectionItem& item : items) {
    if (item.request == nullptr)
      throw std::invalid_argument("OptCacheSelect: null request in items");
    if (item.value < 0.0)
      throw std::invalid_argument("OptCacheSelect: negative item value");
  }
  std::vector<FileId> free_sorted(free_files.begin(), free_files.end());
  std::sort(free_sorted.begin(), free_sorted.end());
  free_sorted.erase(std::unique(free_sorted.begin(), free_sorted.end()),
                    free_sorted.end());

  switch (variant) {
    case SelectVariant::Basic:
      return select_basic(items, capacity, free_sorted, cost);
    case SelectVariant::Resort:
      return select_resort(items, capacity, free_sorted, {}, cost);
    case SelectVariant::Seeded1:
      return select_seeded(items, capacity, free_sorted, 1, cost);
    case SelectVariant::Seeded2:
      return select_seeded(items, capacity, free_sorted, 2, cost);
  }
  throw std::logic_error("OptCacheSelect: unknown variant");
}

SelectionResult exact_select(std::span<const SelectionItem> items,
                             const FileCatalog& catalog, Bytes capacity,
                             std::uint64_t max_nodes,
                             ExactSelectStats* stats) {
  ExactSelectStats local_stats;
  ExactSelectStats& search = stats != nullptr ? *stats : local_stats;
  search = ExactSelectStats{};
  const std::size_t n = items.size();
  // Order by value descending so the suffix-sum bound prunes early.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (items[a].value != items[b].value)
      return items[a].value > items[b].value;
    return a < b;
  });
  std::vector<double> suffix(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    suffix[i] = suffix[i + 1] + std::max(0.0, items[order[i]].value);
  }

  std::unordered_map<FileId, std::uint32_t> cover_count;
  std::vector<std::size_t> current, best_set;
  double best_value = 0.0;
  Bytes best_bytes = 0;

  // DFS over include/exclude decisions with union-size accounting.
  auto dfs = [&](auto&& self, std::size_t pos, double value,
                 Bytes used) -> void {
    if (value > best_value ||
        (value == best_value && used < best_bytes && !current.empty())) {
      best_value = value;
      best_bytes = used;
      best_set = current;
    }
    if (pos == n) return;
    if (search.truncated) return;
    if (max_nodes != 0 && search.nodes >= max_nodes) {
      search.truncated = true;  // budget exhausted: keep the incumbent
      return;
    }
    ++search.nodes;
    if (value + suffix[pos] <= best_value) return;  // bound

    const std::size_t idx = order[pos];
    // Include branch (when it fits and has value).
    if (items[idx].value > 0.0) {
      Bytes extra = 0;
      for (FileId id : items[idx].request->files) {
        auto it = cover_count.find(id);
        if (it == cover_count.end() || it->second == 0)
          extra += catalog.size_of(id);
      }
      if (used + extra <= capacity) {
        for (FileId id : items[idx].request->files) ++cover_count[id];
        current.push_back(idx);
        self(self, pos + 1, value + items[idx].value, used + extra);
        current.pop_back();
        for (FileId id : items[idx].request->files) --cover_count[id];
      }
    }
    // Exclude branch.
    self(self, pos + 1, value, used);
  };
  dfs(dfs, 0, 0.0, 0);

  SelectionResult result;
  result.chosen = best_set;
  result.total_value = best_value;
  finalize_files(catalog, items, {}, result);
  return result;
}

}  // namespace fbc
