// BundleOPTgen: an online OPT occupancy oracle for file-bundle caching.
//
// The bundle analogue of ChampSim's OPTgen. Every observed job occupies one
// time quantum; for each arriving request the oracle asks "could an optimal
// (or any) schedule have kept this bundle's files resident since their
// previous occurrences?" and answers with THREE nested verdicts, tightest
// first:
//
//   opt_hit         -- the classic OPTgen greedy: admit the reuse interval
//                      iff forced + committed occupancy stays within
//                      capacity at every quantum of the gap, then commit
//                      the bundle's bytes to those quanta. A heuristic
//                      estimate of OPT's hit schedule (exact Belady for
//                      unit-size single-file workloads).
//   demand_feasible -- a *necessary* condition for any demand-only (non
//                      prefetching) FCFS policy to hit: each file must have
//                      a previous serviced occurrence, and at every quantum
//                      of each file's reuse gap the forced occupancy (the
//                      bundle bytes of the job serviced at that quantum)
//                      plus the gap files' bytes must fit the cache.
//                      Hence demand-hits upper-bound every such policy.
//   reuse_feasible  -- a *necessary* condition for ANY policy (prefetching
//                      included) to hit under FCFS: every file appeared in
//                      some earlier job, some earlier job was serviced, and
//                      the union of this bundle with the last serviced
//                      job's bundle fits the cache.
//
// Structural nesting (see docs/OPTGEN.md for the proofs):
//
//   opt_hit  =>  demand_feasible  =>  reuse_feasible  =>  clairvoyant
//
// where "clairvoyant" is the repeat-based lookahead bound in core/bounds.
// A key invariant making the committed occupancy exact: per-file commitment
// intervals never overlap (a file's gap is delimited by its own serviced
// occurrences), so forced[u] + committed[u] counts every retained file's
// bytes exactly once.
//
// Occupancy is kept in a ring buffer of `window_quanta` quanta; reuse gaps
// reaching further back are clipped to the window (clipped quanta are
// treated as feasible, so the bound stays an upper bound; the verdict's
// `truncated` flag records the loss of precision).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/types.hpp"
#include "util/bytes.hpp"

namespace fbc {

/// Tuning knobs for the oracle.
struct OptgenConfig {
  /// Cache capacity the oracle reasons about. Precondition: > 0.
  Bytes capacity = 0;
  /// Ring-buffer horizon: reuse gaps longer than this many jobs are
  /// clipped (clipped quanta count as feasible). Precondition: > 0.
  std::size_t window_quanta = 4096;
};

/// Per-request oracle answer. All hit levels imply `serviced`.
struct OptgenVerdict {
  /// Bundle fits the cache at all (mirrors the simulator's serviceability
  /// rule: unserviceable jobs load nothing and evict nothing).
  bool serviced = false;
  /// Level 1 (tightest): the OPTgen greedy committed this reuse interval.
  bool opt_hit = false;
  /// Level 2: necessary condition for a demand-only FCFS policy hit.
  bool demand_feasible = false;
  /// Level 3: necessary condition for any FCFS policy hit.
  bool reuse_feasible = false;
  /// Some reuse gap (or the last serviced job) fell outside the window.
  bool truncated = false;

  friend bool operator==(const OptgenVerdict&, const OptgenVerdict&) = default;
};

/// Cumulative oracle statistics. Hit values are accumulated at three
/// weights: request count, bundle bytes (the paper's value v(r) = bytes
/// saved), and degree-adjusted value density v'(r) = v(r) / sum s'(f) with
/// s'(f) = s(f) / d(f) (paper section 3's value-density objective; d(f) is
/// the file's online occurrence count).
struct OptgenStats {
  std::uint64_t jobs = 0;
  std::uint64_t serviced = 0;
  std::uint64_t opt_hits = 0;
  std::uint64_t demand_hits = 0;
  std::uint64_t reuse_hits = 0;
  Bytes opt_hit_bytes = 0;
  Bytes demand_hit_bytes = 0;
  Bytes reuse_hit_bytes = 0;
  double opt_density_value = 0.0;
  double demand_density_value = 0.0;
  double reuse_density_value = 0.0;
  /// Number of verdicts whose gaps were clipped to the window.
  std::uint64_t truncated_intervals = 0;
  /// Ring-buffer quanta visited while scanning/committing gaps -- the
  /// oracle's deterministic cost counter (bench_optgen's metric).
  std::uint64_t slices_scanned = 0;
  /// Largest forced + committed occupancy ever reached at one quantum.
  Bytes peak_occupancy = 0;
};

/// Online incremental OPT occupancy oracle (see file comment).
class BundleOPTgen {
 public:
  /// The catalog must outlive the oracle.
  /// Preconditions: config.capacity > 0, config.window_quanta > 0.
  BundleOPTgen(const FileCatalog& catalog, const OptgenConfig& config);

  /// Observes the next job in arrival order and returns its verdict.
  /// Quanta advance by one per call.
  OptgenVerdict observe(const Request& request);

  [[nodiscard]] const OptgenStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const OptgenConfig& config() const noexcept { return config_; }

  /// Number of jobs observed so far (== the next quantum index).
  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }

  /// Forced + committed occupancy at quantum `u`, or 0 when `u` is outside
  /// the current window. Exposed for capacity-invariant checks.
  [[nodiscard]] Bytes occupancy_at(std::uint64_t u) const noexcept;

  /// Clears all state, making the instance reusable.
  void reset();

 private:
  [[nodiscard]] std::size_t slot(std::uint64_t u) const noexcept {
    return static_cast<std::size_t>(u % config_.window_quanta);
  }
  /// Marks quantum `u`'s slot needed by `bytes` for the current verdict,
  /// lazily resetting stale scratch state.
  void add_need(std::uint64_t u, Bytes bytes);

  const FileCatalog* catalog_;
  OptgenConfig config_;

  std::uint64_t now_ = 0;
  // Ring buffers indexed by quantum % window. forced_[slot(u)] is the
  // bundle bytes of the job serviced at quantum u (0 when unserviceable);
  // committed_[slot(u)] is the bytes the OPTgen greedy retained across u.
  std::vector<Bytes> forced_;
  std::vector<Bytes> committed_;
  // Scratch per-verdict gap demand, epoch-stamped so it resets lazily.
  std::vector<Bytes> need_;
  std::vector<std::uint64_t> need_epoch_;
  std::vector<std::uint64_t> touched_;  // quanta with need_ > 0, ascending

  static constexpr std::uint64_t kNever = ~0ULL;
  // Per-file quantum of the last occurrence in any job / in a serviced
  // job, and the online occurrence count d(f).
  std::vector<std::uint64_t> last_any_;
  std::vector<std::uint64_t> last_serviced_;
  std::vector<std::uint64_t> degree_;

  bool have_serviced_ = false;
  std::uint64_t last_serviced_job_ = kNever;
  std::vector<FileId> last_serviced_files_;

  OptgenStats stats_;
};

/// Convenience: replays `jobs` through a fresh oracle and returns the final
/// statistics (the fbcsim/fbcstat upper-bound reporter).
[[nodiscard]] OptgenStats replay_optgen(const FileCatalog& catalog,
                                        std::span<const Request> jobs,
                                        const OptgenConfig& config);

}  // namespace fbc
