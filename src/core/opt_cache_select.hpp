// OptCacheSelect: the greedy heuristic at the heart of the paper
// (Algorithm 1) plus its variants and an exact reference solver.
//
// Problem (File-Bundle Caching, FBC): given requests r_i with values
// v(r_i) over files with sizes s(f) and a budget s(C), choose a subset of
// requests of maximum total value whose files fit in s(C). NP-hard
// (reduction from Dense-k-Subgraph, paper §4); the greedy ranks requests by
// adjusted relative value v'(r) = v(r) / sum_f s(f)/d(f) and admits them in
// decreasing order, finally comparing against the best single request
// (Algorithm 1 step 3). Guarantee: >= 1/2 (1 - e^{-1/d}) of optimal, where
// d is the maximum number of requests sharing one file (Theorem 4.1).
//
// Variants:
//   Basic   -- Algorithm 1 verbatim: one sort, naive size accounting that
//              double-counts files shared between selected requests.
//   Resort  -- the paper's "Note": after each selection the sizes of files
//              already chosen are treated as 0 and ranks are recomputed;
//              implemented incrementally with an inverted file->item index
//              so only affected items are re-keyed (no full resort).
//   Seeded1/Seeded2 -- enumerate every 1-/2-subset as a forced seed and
//              complete greedily, keeping the best candidate solution;
//              realizes the improved (1 - e^{-1/d}) bound (paper §4) at
//              O(n)/O(n^2) times the cost. Ablation/benchmark use.
//
// exact_select() solves small instances optimally by branch-and-bound with
// true union-size accounting, for bound-verification tests and the
// approximation-ratio bench.
#pragma once

#include <span>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/metrics.hpp"
#include "cache/types.hpp"

namespace fbc {

/// One selectable request with its value. `request` is non-owning and must
/// outlive the selection call.
struct SelectionItem {
  const Request* request = nullptr;
  double value = 0.0;
};

/// Outcome of a selection.
struct SelectionResult {
  /// Indices into the input items, in selection order.
  std::vector<std::size_t> chosen;
  /// Union of the chosen bundles' files, sorted, with the caller-declared
  /// free files excluded.
  std::vector<FileId> files;
  /// Sum of chosen item values.
  double total_value = 0.0;
  /// Actual (union) byte size of `files`.
  Bytes file_bytes = 0;
  /// True when Algorithm 1 step 3 replaced the greedy set with the single
  /// highest-value request.
  bool single_request_override = false;
};

/// Greedy-variant selector (see file comment).
enum class SelectVariant { Basic, Resort, Seeded1, Seeded2 };

/// Returns "basic" / "resort" / "seeded1" / "seeded2".
[[nodiscard]] std::string to_string(SelectVariant variant);

/// The greedy selector. Binds a catalog (file sizes) and a degree table
/// d(f) (indexed by FileId; entries beyond its length count as degree 0).
class OptCacheSelect {
 public:
  OptCacheSelect(const FileCatalog& catalog,
                 std::span<const std::uint32_t> degrees) noexcept
      : catalog_(&catalog), degrees_(degrees) {}

  /// Selects a subset of `items` whose non-free files fit within
  /// `capacity` bytes. Files listed in `free_files` (sorted or not; they
  /// are copied and sorted) cost nothing -- OptFileBundle passes the
  /// incoming request's bundle, which is staying in the cache regardless.
  /// When `cost` is non-null, the selection effort (full v'(r) rescores,
  /// heap pushes/pops) is accumulated into it.
  [[nodiscard]] SelectionResult select(
      std::span<const SelectionItem> items, Bytes capacity,
      SelectVariant variant = SelectVariant::Resort,
      std::span<const FileId> free_files = {},
      SelectionCost* cost = nullptr) const;

  /// s'(f) = s(f) / max(1, d(f)) under the bound degree table.
  [[nodiscard]] double adjusted_size(FileId id) const noexcept;

 private:
  SelectionResult select_basic(std::span<const SelectionItem> items,
                               Bytes capacity,
                               std::span<const FileId> free_sorted,
                               SelectionCost* cost) const;
  SelectionResult select_resort(std::span<const SelectionItem> items,
                                Bytes capacity,
                                std::span<const FileId> free_sorted,
                                std::span<const std::size_t> seed,
                                SelectionCost* cost) const;
  SelectionResult select_seeded(std::span<const SelectionItem> items,
                                Bytes capacity,
                                std::span<const FileId> free_sorted,
                                int k, SelectionCost* cost) const;
  void apply_single_override(std::span<const SelectionItem> items,
                             Bytes capacity,
                             std::span<const FileId> free_sorted,
                             SelectionResult& result) const;

  const FileCatalog* catalog_;
  std::span<const std::uint32_t> degrees_;
};

/// Search statistics reported by exact_select().
struct ExactSelectStats {
  /// Branch-and-bound nodes expanded (include/exclude decision points).
  std::uint64_t nodes = 0;
  /// True when the node budget was exhausted before the search completed.
  /// The returned result is then only a feasible lower bound on the
  /// optimum, not a certified optimum.
  bool truncated = false;
};

/// Exact FBC optimum by branch-and-bound with union-size accounting.
/// Exponential; intended for instances up to a few dozen items.
///
/// `max_nodes` bounds the number of search nodes expanded (0 = unbounded)
/// so adversarial instances cannot hang callers such as the fuzzer; when
/// the budget runs out the best solution found so far is returned and
/// `stats->truncated` is set. `stats` (optional) receives the node count
/// and truncation flag.
[[nodiscard]] SelectionResult exact_select(std::span<const SelectionItem> items,
                                           const FileCatalog& catalog,
                                           Bytes capacity,
                                           std::uint64_t max_nodes = 0,
                                           ExactSelectStats* stats = nullptr);

}  // namespace fbc
