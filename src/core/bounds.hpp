// Theoretical approximation-bound helpers (paper §4, Theorem 4.1 and the
// Appendix A improvement) plus clairvoyant hit-rate upper bounds for whole
// job streams. Used by the bound-verification tests, the approximation-ratio
// bench, and the fbcsim/fbcstat upper-bound reporters.
#pragma once

#include <cstdint>
#include <span>

#include "cache/catalog.hpp"
#include "core/opt_cache_select.hpp"
#include "util/bytes.hpp"

namespace fbc {

/// The basic OptCacheSelect guarantee: total selected value is at least
/// 1/2 (1 - e^{-1/d}) of optimal, where `d` is the maximum number of
/// requests sharing one file. d == 0 (no sharing data) returns the d = 1
/// bound.
[[nodiscard]] double greedy_bound_factor(std::uint32_t d) noexcept;

/// The improved bound (1 - e^{-1/d}) achievable by the Seeded(k>=2)
/// enumeration (paper §4, after Theorem 4.1).
[[nodiscard]] double seeded_bound_factor(std::uint32_t d) noexcept;

/// Maximum file degree of an instance: the largest number of items whose
/// bundles share one file.
[[nodiscard]] std::uint32_t max_file_degree(
    std::span<const SelectionItem> items);

/// A clairvoyant hit-rate upper bound for a job stream, accumulated at the
/// three weightings used throughout the project: request count, bundle
/// bytes (the paper's value v(r)) and the degree-adjusted value density
/// v'(r) = v(r) / sum_f s(f)/d(f) -- the paper's value-density objective.
struct RepeatBound {
  std::uint64_t hits = 0;
  Bytes hit_bytes = 0;
  double density_value = 0.0;
};

/// The lookahead (clairvoyant) upper bound, aligned with the paper's
/// bundle-value objective: job t can be a hit only if its bundle fits the
/// cache AND every one of its files appeared in some earlier job (empty
/// bundles are trivial hits). An upper bound on the hits of every policy
/// under FCFS service; by construction it dominates all three BundleOPTgen
/// bound levels (core/optgen), which refine it with occupancy feasibility.
[[nodiscard]] RepeatBound clairvoyant_upper_bound(const FileCatalog& catalog,
                                                  std::span<const Request> jobs,
                                                  Bytes capacity);

/// The naive unweighted form this replaced: counts jobs whose *exact*
/// request was seen before, ignoring capacity, file overlap and bundle
/// value. Kept only so the old-vs-new regression test can pin how far the
/// unweighted report diverged from the paper-aligned bound.
[[nodiscard]] std::uint64_t naive_repeat_upper_bound(
    std::span<const Request> jobs);

}  // namespace fbc
