// Theoretical approximation-bound helpers (paper §4, Theorem 4.1 and the
// Appendix A improvement). Used by the bound-verification tests and the
// approximation-ratio bench to annotate measured ratios with the proven
// floors.
#pragma once

#include <cstdint>
#include <span>

#include "core/opt_cache_select.hpp"

namespace fbc {

/// The basic OptCacheSelect guarantee: total selected value is at least
/// 1/2 (1 - e^{-1/d}) of optimal, where `d` is the maximum number of
/// requests sharing one file. d == 0 (no sharing data) returns the d = 1
/// bound.
[[nodiscard]] double greedy_bound_factor(std::uint32_t d) noexcept;

/// The improved bound (1 - e^{-1/d}) achievable by the Seeded(k>=2)
/// enumeration (paper §4, after Theorem 4.1).
[[nodiscard]] double seeded_bound_factor(std::uint32_t d) noexcept;

/// Maximum file degree of an instance: the largest number of items whose
/// bundles share one file.
[[nodiscard]] std::uint32_t max_file_degree(
    std::span<const SelectionItem> items);

}  // namespace fbc
