// RequestHistory: the paper's L(R) data structure.
//
// For every distinct request (file-bundle) ever serviced it stores the
// value v(r) -- in the base implementation a popularity counter -- and the
// bundle itself; per file it maintains the degree d(f), the number of
// distinct requests that use f. From these it derives the quantities the
// OptCacheSelect greedy ranks by:
//
//    adjusted file size      s'(f) = s(f) / d(f)
//    adjusted relative value v'(r) = v(r) / sum_{f in F(r)} s'(f)
//
// Because the full history grows without bound (and §5.2 shows the cost of
// selection grows with it), three truncation modes control which entries
// are offered as *candidates* to the selector:
//
//   Full          -- all requests ever seen (the paper's baseline);
//   Window(K)     -- only requests seen within the last K jobs;
//   CacheResident -- only requests currently supported by the cache, while
//                    popularity counters and file degrees still come from
//                    the *global* history (the paper's recommended mode:
//                    Fig. 5 shows the truncation costs almost nothing).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"
#include "cache/catalog.hpp"
#include "cache/types.hpp"

namespace fbc {

/// Candidate-set truncation mode (see file comment).
enum class HistoryMode { Full, Window, CacheResident };

/// Returns "full" / "window" / "cache-resident".
[[nodiscard]] std::string to_string(HistoryMode mode);

/// Configuration for RequestHistory.
struct RequestHistoryConfig {
  HistoryMode mode = HistoryMode::CacheResident;
  /// Window mode only: candidates are entries seen in the last
  /// `window_jobs` observed jobs.
  std::uint64_t window_jobs = 1000;
  /// Hard bound on tracked distinct requests; 0 = unbounded (the paper's
  /// setting). When exceeded, the lowest-value (tie: stalest) quarter of
  /// entries is dropped and their contribution is removed from the file
  /// degrees -- a deviation from the paper's global degrees, accepted so
  /// a production deployment has bounded memory. A dropped request that
  /// reappears restarts with value 1.
  std::size_t max_entries = 0;
};

/// One distinct request tracked by the history.
struct HistoryEntry {
  Request request;
  /// v(r): occurrence counter (the paper notes it could also encode
  /// priorities; see observe()'s weight parameter).
  double value = 0.0;
  /// Index (1-based) of the most recent job that was this request.
  std::uint64_t last_seen = 0;
};

/// Change-journal of history mutations since the last drain, recorded when
/// journaling is enabled (see RequestHistory::set_journaling). Incremental
/// consumers (core/incremental_select.hpp) drain it per replacement
/// decision instead of re-deriving the whole history:
///   * `added`/`value_dirty` hold entry indices (valid only while
///     `remapped` is false -- compaction renumbers entries);
///   * `degree_deltas` are exact per-file d(f) changes: +1 per file of a
///     newly tracked request, -1 per file of a compaction-dropped one. A
///     consumer applying them to its own degree table stays equal to a
///     from-scratch recount even across compactions.
struct HistoryJournal {
  /// Entries appended since the last drain (indices into entries()).
  std::vector<std::size_t> added;
  /// Entries whose value/last_seen changed (re-observed requests).
  std::vector<std::size_t> value_dirty;
  /// Exact per-file degree changes, in occurrence order.
  std::vector<std::pair<FileId, std::int32_t>> degree_deltas;
  /// True when compaction renumbered entries: all indices recorded in this
  /// journal (and any cached by the consumer) are invalid.
  bool remapped = false;
  /// Entries dropped by compaction since the last drain.
  std::uint64_t dropped = 0;

  [[nodiscard]] bool empty() const noexcept {
    return added.empty() && value_dirty.empty() && degree_deltas.empty() &&
           !remapped && dropped == 0;
  }
  void clear() noexcept {
    added.clear();
    value_dirty.clear();
    degree_deltas.clear();
    remapped = false;
    dropped = 0;
  }
};

/// The L(R) structure (see file comment).
class RequestHistory {
 public:
  /// The catalog must outlive the history.
  explicit RequestHistory(const FileCatalog& catalog,
                          RequestHistoryConfig config = {});

  /// Records one occurrence of `request` with the given value weight
  /// (default 1: plain popularity counting). New distinct requests bump
  /// the degree d(f) of each of their files.
  void observe(const Request& request, double weight = 1.0);

  /// Number of jobs observed so far.
  [[nodiscard]] std::uint64_t observed_jobs() const noexcept {
    return observed_jobs_;
  }

  /// Number of distinct requests tracked.
  [[nodiscard]] std::size_t distinct_requests() const noexcept {
    return entries_.size();
  }

  /// d(f): number of distinct requests whose bundle contains `id`
  /// (0 when the file was never requested).
  [[nodiscard]] std::uint32_t degree(FileId id) const noexcept;

  /// Largest degree over all files -- the `d` in the approximation bound.
  [[nodiscard]] std::uint32_t max_degree() const noexcept;

  /// s'(f) = s(f) / max(1, d(f)).
  [[nodiscard]] double adjusted_size(FileId id) const noexcept;

  /// Sum of adjusted sizes over a bundle.
  [[nodiscard]] double adjusted_bundle_size(
      std::span<const FileId> files) const noexcept;

  /// v(r) for a request; 0 when never observed.
  [[nodiscard]] double value(const Request& request) const noexcept;

  /// v'(r) = v(r) / adjusted bundle size; 0 when never observed.
  /// `extra_weight` is added to v(r) first (used when ranking a request
  /// whose current occurrence has not been observed yet, e.g. queue
  /// scheduling).
  [[nodiscard]] double relative_value(const Request& request,
                                      double extra_weight = 0.0) const noexcept;

  /// Read-only view of the degree table (indexed by FileId; may be shorter
  /// than the catalog when trailing files were never requested).
  [[nodiscard]] std::span<const std::uint32_t> degrees() const noexcept {
    return degree_;
  }

  /// All tracked entries (unspecified order).
  [[nodiscard]] std::span<const HistoryEntry> entries() const noexcept {
    return entries_;
  }

  /// The candidate entries the configured truncation mode admits for a
  /// replacement decision against `cache`. Entries equal to
  /// `exclude` (typically the incoming request, whose files are reserved
  /// separately) are omitted; pass nullptr to keep everything.
  [[nodiscard]] std::vector<const HistoryEntry*> candidates(
      const DiskCache& cache, const Request* exclude = nullptr) const;

  /// Starts (or stops) recording mutations into journal(). Off by default:
  /// reference-engine users pay nothing. Toggling clears the journal.
  void set_journaling(bool enabled);

  [[nodiscard]] bool journaling() const noexcept { return journaling_; }

  /// Mutations since the last drain_journal() (empty unless journaling).
  [[nodiscard]] const HistoryJournal& journal() const noexcept {
    return journal_;
  }

  /// Discards the journal once the consumer has applied it.
  void drain_journal() noexcept { journal_.clear(); }

  /// Index into entries() of the entry tracking `request`, or SIZE_MAX
  /// when the request is not (or no longer) tracked.
  [[nodiscard]] std::size_t entry_index(const Request& request) const noexcept;

  [[nodiscard]] const RequestHistoryConfig& config() const noexcept {
    return config_;
  }

  /// Removes all state.
  void clear();

 private:
  /// Enforces config_.max_entries (see RequestHistoryConfig).
  void compact();

  /// Recomputes max_degree_ after degree decrements.
  void recompute_max_degree() noexcept;

  const FileCatalog* catalog_;
  RequestHistoryConfig config_;
  std::unordered_map<Request, std::size_t, RequestHash> index_;
  std::vector<HistoryEntry> entries_;
  std::vector<std::uint32_t> degree_;
  std::uint32_t max_degree_ = 0;
  std::uint64_t observed_jobs_ = 0;
  bool journaling_ = false;
  HistoryJournal journal_;
};

}  // namespace fbc
