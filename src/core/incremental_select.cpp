#include "core/incremental_select.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fbc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::string to_string(SelectEngine engine) {
  switch (engine) {
    case SelectEngine::Reference: return "reference";
    case SelectEngine::Incremental: return "incremental";
  }
  return "?";
}

SelectEngine parse_select_engine(const std::string& name) {
  if (name == "reference") return SelectEngine::Reference;
  if (name == "incremental") return SelectEngine::Incremental;
  throw std::invalid_argument("unknown selection engine '" + name +
                              "' (expected reference|incremental)");
}

IncrementalSelector::IncrementalSelector(const FileCatalog& catalog,
                                         RequestHistory& history)
    : catalog_(&catalog), history_(&history) {}

double IncrementalSelector::adjusted_size(FileId id) const noexcept {
  // Mirrors OptCacheSelect::adjusted_size over the live degree table.
  const std::span<const std::uint32_t> degrees = history_->degrees();
  const std::uint32_t d =
      id < degrees.size() ? std::max<std::uint32_t>(1, degrees[id]) : 1;
  return static_cast<double>(catalog_->size_of(id)) / static_cast<double>(d);
}

bool IncrementalSelector::is_free(FileId id) const noexcept {
  return std::binary_search(free_sorted_.begin(), free_sorted_.end(), id);
}

void IncrementalSelector::reset() {
  synced_ = false;
  // Everything else is rebuilt by the next sync(); epochs keep counting so
  // stale stamps can never collide.
}

void IncrementalSelector::add_supported(std::uint32_t entry) {
  if (supported_pos_[entry] != 0) return;
  supported_.push_back(entry);
  supported_pos_[entry] = static_cast<std::uint32_t>(supported_.size());
}

void IncrementalSelector::remove_supported(std::uint32_t entry) {
  const std::uint32_t pos = supported_pos_[entry];
  if (pos == 0) return;
  const std::uint32_t last = supported_.back();
  supported_[pos - 1] = last;
  supported_pos_[last] = pos;
  supported_.pop_back();
  supported_pos_[entry] = 0;
}

void IncrementalSelector::grow_entry_arrays(std::size_t count) {
  adj0_.resize(count, 0.0);
  real0_.resize(count, 0);
  missing_.resize(count, 0);
  dirty_.resize(count, 1);
  supported_pos_.resize(count, 0);
  touch_epoch_.resize(count, 0);
  cand_epoch_.resize(count, 0);
  cand_pos_.resize(count, 0);
}

void IncrementalSelector::attach_entry(std::size_t index) {
  const HistoryEntry& entry = history_->entries()[index];
  const auto e = static_cast<std::uint32_t>(index);
  std::uint32_t missing = 0;
  for (FileId id : entry.request.files) {
    if (inverted_.size() <= id) inverted_.resize(id + 1);
    inverted_[id].push_back(e);
    if (resident_.size() <= id) resident_.resize(id + 1, 0);
    if (resident_[id] == 0) ++missing;
  }
  missing_[index] = missing;
  dirty_[index] = 1;
  if (missing == 0) add_supported(e);
}

void IncrementalSelector::full_rebuild() {
  const std::span<const HistoryEntry> entries = history_->entries();
  for (std::vector<std::uint32_t>& list : inverted_) list.clear();
  supported_.clear();
  adj0_.clear();
  real0_.clear();
  missing_.clear();
  dirty_.clear();
  supported_pos_.clear();
  touch_epoch_.clear();
  cand_epoch_.clear();
  cand_pos_.clear();
  grow_entry_arrays(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) attach_entry(i);
}

void IncrementalSelector::sync(const DiskCache& cache) {
  resident_.assign(catalog_->count(), 0);
  for (FileId id : cache.resident_files()) {
    if (resident_.size() <= id) resident_.resize(id + 1, 0);
    resident_[id] = 1;
  }
  if (covered_run_.size() < catalog_->count()) {
    covered_run_.resize(catalog_->count(), 0);
  }
  full_rebuild();
  history_->drain_journal();
  synced_ = true;
}

void IncrementalSelector::drain_journal() {
  const HistoryJournal& journal = history_->journal();
  if (journal.empty()) return;
  if (journal.remapped) {
    // Compaction renumbered entries: every cached index is invalid.
    full_rebuild();
    history_->drain_journal();
    return;
  }
  // Degree deltas dirty exactly the entries sharing the touched files
  // (their cached v'(r) denominators changed). Entries added this batch
  // are not in the inverted index yet, but attach_entry marks them dirty
  // unconditionally.
  for (const auto& [id, delta] : journal.degree_deltas) {
    (void)delta;
    if (id < inverted_.size()) {
      for (std::uint32_t e : inverted_[id]) dirty_[e] = 1;
    }
  }
  grow_entry_arrays(history_->entries().size());
  for (std::size_t index : journal.added) attach_entry(index);
  // Value bumps need no action: values are read live at selection time and
  // do not enter the cached denominators.
  history_->drain_journal();
}

void IncrementalSelector::on_files_loaded(std::span<const FileId> loaded) {
  if (!synced_) return;  // first select() resynchronizes from the cache
  for (FileId id : loaded) {
    if (resident_.size() <= id) resident_.resize(id + 1, 0);
    if (resident_[id] != 0) continue;
    resident_[id] = 1;
    if (id < inverted_.size()) {
      for (std::uint32_t e : inverted_[id]) {
        if (--missing_[e] == 0) add_supported(e);
      }
    }
  }
}

void IncrementalSelector::on_file_evicted(FileId id) {
  if (!synced_) return;
  if (resident_.size() <= id || resident_[id] == 0) return;
  resident_[id] = 0;
  if (id < inverted_.size()) {
    for (std::uint32_t e : inverted_[id]) {
      if (missing_[e]++ == 0) remove_supported(e);
    }
  }
}

void IncrementalSelector::ensure_scored(std::uint32_t entry,
                                        SelectionCost* cost) {
  if (dirty_[entry] == 0) return;
  // The cached denominator is the sum over ALL bundle files in bundle
  // order -- bit-identical to what the reference computes for an entry
  // whose bundle misses the free set, because skipping nothing preserves
  // the addition order.
  const HistoryEntry& he = history_->entries()[entry];
  double adj = 0.0;
  Bytes real = 0;
  for (FileId id : he.request.files) {
    adj += adjusted_size(id);
    real += catalog_->size_of(id);
  }
  adj0_[entry] = adj;
  real0_[entry] = real;
  dirty_[entry] = 0;
  if (cost != nullptr) ++cost->entries_rescored;
}

void IncrementalSelector::collect_candidates(const Request& incoming,
                                             const DiskCache& cache,
                                             SelectionCost* cost) {
  (void)cache;
  cand_.clear();
  const std::span<const HistoryEntry> entries = history_->entries();
  const std::size_t exclude = history_->entry_index(incoming);
  const RequestHistoryConfig& config = history_->config();

  if (config.mode == HistoryMode::CacheResident) {
    // The exact supported set, put back into history order (the order the
    // reference's full scan produces). All candidates are supported, so
    // the supported-first partition is a no-op.
    if (cost != nullptr) cost->candidates_scanned += supported_.size();
    cand_.assign(supported_.begin(), supported_.end());
    std::sort(cand_.begin(), cand_.end());
    if (exclude != SIZE_MAX) {
      const auto it = std::lower_bound(
          cand_.begin(), cand_.end(), static_cast<std::uint32_t>(exclude));
      if (it != cand_.end() && *it == exclude) cand_.erase(it);
    }
    return;
  }

  // Full/Window admit entries regardless of residency; replicate the
  // reference's stable supported-first partition using the O(1)
  // missing-count instead of cache.supports.
  if (cost != nullptr) cost->candidates_scanned += entries.size();
  std::vector<std::uint32_t> unsupported;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i == exclude) continue;
    if (config.mode == HistoryMode::Window &&
        entries[i].last_seen + config.window_jobs <=
            history_->observed_jobs()) {
      continue;
    }
    const auto e = static_cast<std::uint32_t>(i);
    if (missing_[i] == 0) {
      cand_.push_back(e);
    } else {
      unsupported.push_back(e);
    }
  }
  cand_.insert(cand_.end(), unsupported.begin(), unsupported.end());
}

void IncrementalSelector::build_initial_sizes(SelectionCost* cost) {
  // Entries whose bundle intersects the free set need a per-decision
  // rescore that skips the free files (the reference's addition order);
  // everyone else reuses the cached all-files sums.
  for (FileId id : free_sorted_) {
    if (id < inverted_.size()) {
      for (std::uint32_t e : inverted_[id]) touch_epoch_[e] = epoch_;
    }
  }
  const std::span<const HistoryEntry> entries = history_->entries();
  const std::size_t k = cand_.size();
  values_.resize(k);
  adj_init_.resize(k);
  real_init_.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    const std::uint32_t e = cand_[c];
    cand_epoch_[e] = epoch_;
    cand_pos_[e] = static_cast<std::uint32_t>(c);
    values_[c] = entries[e].value;
    if (touch_epoch_[e] == epoch_) {
      double adj = 0.0;
      Bytes real = 0;
      for (FileId id : entries[e].request.files) {
        if (is_free(id)) continue;
        adj += adjusted_size(id);
        real += catalog_->size_of(id);
      }
      adj_init_[c] = adj;
      real_init_[c] = real;
      if (cost != nullptr) ++cost->entries_rescored;
    } else {
      ensure_scored(e, cost);
      adj_init_[c] = adj0_[e];
      real_init_[c] = real0_[e];
    }
  }
}

void IncrementalSelector::finalize_files(SelectionResult& result) const {
  const std::span<const HistoryEntry> entries = history_->entries();
  std::vector<FileId> files;
  for (std::size_t idx : result.chosen) {
    for (FileId id : entries[cand_[idx]].request.files) {
      if (!is_free(id)) files.push_back(id);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  result.file_bytes = catalog_->bundle_bytes(files);
  result.files = std::move(files);
}

void IncrementalSelector::apply_single_override(Bytes budget,
                                                SelectionResult& result) const {
  // Algorithm 1 step 3, with the stand-alone size taken from the initial
  // real sizes (integers: equal to the reference's fresh sum).
  double best_value = 0.0;
  std::size_t best_idx = cand_.size();
  for (std::size_t c = 0; c < cand_.size(); ++c) {
    if (values_[c] <= best_value) continue;
    if (real_init_[c] <= budget) {
      best_value = values_[c];
      best_idx = c;
    }
  }
  if (best_idx < cand_.size() && best_value > result.total_value) {
    result.chosen = {best_idx};
    result.total_value = best_value;
    result.single_request_override = true;
    finalize_files(result);
  }
}

SelectionResult IncrementalSelector::run_basic(Bytes budget,
                                               SelectionCost* cost) {
  (void)cost;
  const std::size_t k = cand_.size();
  std::vector<double> rank(k);
  for (std::size_t c = 0; c < k; ++c) {
    if (values_[c] <= 0.0) {
      rank[c] = -kInf;
    } else {
      rank[c] = adj_init_[c] > 0.0 ? values_[c] / adj_init_[c] : kInf;
    }
  }
  std::vector<std::size_t> order(k);
  for (std::size_t c = 0; c < k; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return a < b;
  });

  SelectionResult result;
  Bytes remaining = budget;
  for (std::size_t idx : order) {
    if (rank[idx] == -kInf) break;
    if (real_init_[idx] <= remaining) {
      remaining -= real_init_[idx];
      result.chosen.push_back(idx);
      result.total_value += values_[idx];
    }
  }
  finalize_files(result);
  apply_single_override(budget, result);
  return result;
}

SelectionResult IncrementalSelector::run_resort(
    Bytes budget, std::span<const std::size_t> seed, SelectionCost* cost) {
  const std::size_t k = cand_.size();
  const std::span<const HistoryEntry> entries = history_->entries();
  adj_.assign(adj_init_.begin(), adj_init_.end());
  real_.assign(real_init_.begin(), real_init_.end());
  selected_.assign(k, 0);
  dead_.assign(k, 0);
  version_.assign(k, 0);
  ++run_id_;
  std::uint64_t heap_ops = 0;

  auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.key != b.key) return a.key < b.key;  // max-heap by key
    return a.idx > b.idx;                      // then lowest index first
  };
  // Reused member storage: push_heap/pop_heap with the same comparator is
  // operation-for-operation what std::priority_queue does, so pop order
  // (and thus the chosen set) is identical -- minus the per-call
  // allocation, which shows up on the serving hot path where this runs
  // once per cache miss.
  heap_.clear();
  auto heap_push = [&](HeapEntry e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), cmp);
    ++heap_ops;
  };
  auto key_of = [&](std::size_t c) {
    return adj_[c] > 0.0 ? values_[c] / adj_[c] : kInf;
  };

  for (std::size_t c = 0; c < k; ++c) {
    if (values_[c] <= 0.0) {
      dead_[c] = 1;
      continue;
    }
    heap_push(HeapEntry{key_of(c), static_cast<std::uint32_t>(c), 0});
  }

  SelectionResult result;
  Bytes remaining = budget;

  auto take = [&](std::size_t c) {
    selected_[c] = 1;
    remaining -= real_[c];
    result.chosen.push_back(c);
    result.total_value += values_[c];
    for (FileId id : entries[cand_[c]].request.files) {
      if (is_free(id) || covered_run_[id] == run_id_) continue;
      covered_run_[id] = run_id_;
      const double s_adj = adjusted_size(id);
      const Bytes s_real = catalog_->size_of(id);
      if (id >= inverted_.size()) continue;
      for (std::uint32_t e : inverted_[id]) {
        if (cand_epoch_[e] != epoch_) continue;
        const std::uint32_t j = cand_pos_[e];
        if (j == c || selected_[j] != 0 || dead_[j] != 0) continue;
        adj_[j] -= s_adj;
        real_[j] -= s_real;
        ++version_[j];
        heap_push(HeapEntry{key_of(j), j, version_[j]});
      }
    }
  };

  for (std::size_t idx : seed) {
    if (selected_[idx] != 0) continue;
    if (real_[idx] > remaining) {
      if (cost != nullptr) cost->heap_ops += heap_ops;
      SelectionResult infeasible;
      infeasible.total_value = -1.0;
      return infeasible;
    }
    take(idx);
  }

  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    ++heap_ops;
    const std::size_t c = top.idx;
    if (top.version != version_[c] || selected_[c] != 0 || dead_[c] != 0)
      continue;
    if (real_[c] > remaining) {
      dead_[c] = 1;
      continue;
    }
    take(c);
  }
  if (cost != nullptr) cost->heap_ops += heap_ops;

  finalize_files(result);
  if (seed.empty()) apply_single_override(budget, result);
  return result;
}

SelectionResult IncrementalSelector::run_seeded(Bytes budget, int k,
                                                SelectionCost* cost) {
  SelectionResult best = run_resort(budget, {}, cost);
  const std::size_t n = cand_.size();
  std::vector<std::size_t> seed;
  auto consider = [&](std::span<const std::size_t> forced) {
    SelectionResult candidate = run_resort(budget, forced, cost);
    if (candidate.total_value > best.total_value) best = std::move(candidate);
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (values_[i] <= 0.0) continue;
    seed = {i};
    consider(seed);
    if (k >= 2) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (values_[j] <= 0.0) continue;
        seed = {i, j};
        consider(seed);
      }
    }
  }
  return best;
}

IncrementalSelector::Selection IncrementalSelector::select(
    const Request& incoming, std::span<const FileId> free_files, Bytes budget,
    SelectVariant variant, const DiskCache& cache, SelectionCost* cost) {
  if (!synced_) {
    sync(cache);
  } else {
    drain_journal();
  }
  ++epoch_;

  free_sorted_.assign(free_files.begin(), free_files.end());
  std::sort(free_sorted_.begin(), free_sorted_.end());
  free_sorted_.erase(std::unique(free_sorted_.begin(), free_sorted_.end()),
                     free_sorted_.end());

  collect_candidates(incoming, cache, cost);
  build_initial_sizes(cost);

  Selection out;
  out.candidate_count = cand_.size();
  switch (variant) {
    case SelectVariant::Basic:
      out.result = run_basic(budget, cost);
      break;
    case SelectVariant::Resort:
      out.result = run_resort(budget, {}, cost);
      break;
    case SelectVariant::Seeded1:
      out.result = run_seeded(budget, 1, cost);
      break;
    case SelectVariant::Seeded2:
      out.result = run_seeded(budget, 2, cost);
      break;
  }
  return out;
}

}  // namespace fbc
