#include "core/optgen.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fbc {

BundleOPTgen::BundleOPTgen(const FileCatalog& catalog,
                           const OptgenConfig& config)
    : catalog_(&catalog), config_(config) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("BundleOPTgen: capacity must be > 0");
  }
  if (config_.window_quanta == 0) {
    throw std::invalid_argument("BundleOPTgen: window_quanta must be > 0");
  }
  forced_.assign(config_.window_quanta, 0);
  committed_.assign(config_.window_quanta, 0);
  need_.assign(config_.window_quanta, 0);
  need_epoch_.assign(config_.window_quanta, 0);
  last_any_.assign(catalog.count(), kNever);
  last_serviced_.assign(catalog.count(), kNever);
  degree_.assign(catalog.count(), 0);
}

void BundleOPTgen::reset() {
  now_ = 0;
  std::fill(forced_.begin(), forced_.end(), Bytes{0});
  std::fill(committed_.begin(), committed_.end(), Bytes{0});
  std::fill(need_.begin(), need_.end(), Bytes{0});
  std::fill(need_epoch_.begin(), need_epoch_.end(), std::uint64_t{0});
  touched_.clear();
  std::fill(last_any_.begin(), last_any_.end(), kNever);
  std::fill(last_serviced_.begin(), last_serviced_.end(), kNever);
  std::fill(degree_.begin(), degree_.end(), std::uint64_t{0});
  have_serviced_ = false;
  last_serviced_job_ = kNever;
  last_serviced_files_.clear();
  stats_ = OptgenStats{};
}

Bytes BundleOPTgen::occupancy_at(std::uint64_t u) const noexcept {
  if (u >= now_) return 0;
  if (now_ - u > config_.window_quanta) return 0;
  const std::size_t s = slot(u);
  return forced_[s] + committed_[s];
}

void BundleOPTgen::add_need(std::uint64_t u, Bytes bytes) {
  const std::size_t s = slot(u);
  // The verdict epoch is now_ + 1 so the zero-initialized stamps never
  // collide with a live verdict.
  if (need_epoch_[s] != now_ + 1) {
    need_epoch_[s] = now_ + 1;
    need_[s] = 0;
    touched_.push_back(u);
  }
  need_[s] += bytes;
  ++stats_.slices_scanned;
}

OptgenVerdict BundleOPTgen::observe(const Request& request) {
  assert(request.is_canonical());
  const std::uint64_t t = now_;
  const std::uint64_t window = config_.window_quanta;
  const std::uint64_t wstart = t >= window ? t - window : 0;
  const Bytes capacity = config_.capacity;
  const Bytes bundle = catalog_->request_bytes(request);

  OptgenVerdict verdict;
  verdict.serviced = bundle <= capacity;

  if (request.empty()) {
    // An empty bundle is trivially resident: every policy hits it, and so
    // does every oracle level.
    verdict.opt_hit = true;
    verdict.demand_feasible = true;
    verdict.reuse_feasible = true;
  } else if (verdict.serviced) {
    // Level 3 (reuse): every file appeared before, some earlier job was
    // serviced, and this bundle unions with the last serviced bundle
    // within capacity. When the last serviced job is older than the
    // window the union check is clipped (feasible, truncated).
    bool all_seen = true;
    for (FileId f : request.files) {
      if (last_any_[f] == kNever) {
        all_seen = false;
        break;
      }
    }
    if (all_seen && have_serviced_) {
      if (last_serviced_job_ < wstart) {
        verdict.truncated = true;
        verdict.reuse_feasible = true;
      } else {
        Bytes union_bytes = bundle;
        for (FileId f : last_serviced_files_) {
          if (!request.contains(f)) union_bytes += catalog_->size_of(f);
        }
        verdict.reuse_feasible = union_bytes <= capacity;
      }
    }

    // Levels 2 and 1 nest inside level 3 by construction (the proofs in
    // docs/OPTGEN.md show the implications also hold mathematically).
    if (verdict.reuse_feasible) {
      bool all_prev_serviced = true;
      for (FileId f : request.files) {
        if (last_serviced_[f] == kNever) {
          all_prev_serviced = false;
          break;
        }
      }
      if (all_prev_serviced) {
        touched_.clear();
        for (FileId f : request.files) {
          const std::uint64_t p = last_serviced_[f];
          std::uint64_t lo = p + 1;
          if (lo < wstart) {
            verdict.truncated = true;
            lo = wstart;
          }
          const Bytes size = catalog_->size_of(f);
          for (std::uint64_t u = lo; u < t; ++u) add_need(u, size);
        }
        bool demand_ok = true;
        for (std::uint64_t u : touched_) {
          ++stats_.slices_scanned;
          if (forced_[slot(u)] + need_[slot(u)] > capacity) {
            demand_ok = false;
            break;
          }
        }
        verdict.demand_feasible = demand_ok;
        if (demand_ok) {
          bool opt_ok = true;
          for (std::uint64_t u : touched_) {
            ++stats_.slices_scanned;
            const std::size_t s = slot(u);
            if (forced_[s] + committed_[s] + need_[s] > capacity) {
              opt_ok = false;
              break;
            }
          }
          verdict.opt_hit = opt_ok;
          if (opt_ok) {
            for (std::uint64_t u : touched_) {
              ++stats_.slices_scanned;
              const std::size_t s = slot(u);
              committed_[s] += need_[s];
              stats_.peak_occupancy =
                  std::max(stats_.peak_occupancy, forced_[s] + committed_[s]);
            }
          }
        }
      }
    }
  }

  // Record this occurrence. Quantum t's ring slot previously belonged to
  // quantum t - window, which just left the horizon.
  const std::size_t ts = slot(t);
  forced_[ts] = verdict.serviced ? bundle : 0;
  committed_[ts] = 0;
  stats_.peak_occupancy = std::max(stats_.peak_occupancy, forced_[ts]);
  for (FileId f : request.files) {
    assert(catalog_->valid(f));
    last_any_[f] = t;
    ++degree_[f];
  }
  if (verdict.serviced) {
    for (FileId f : request.files) last_serviced_[f] = t;
    have_serviced_ = true;
    last_serviced_job_ = t;
    last_serviced_files_.assign(request.files.begin(), request.files.end());
  }
  now_ = t + 1;

  // Statistics. Density weighting uses the degree counts *including* this
  // occurrence, so d(f) >= 1.
  ++stats_.jobs;
  if (verdict.serviced) ++stats_.serviced;
  if (verdict.truncated) ++stats_.truncated_intervals;
  if (verdict.reuse_feasible) {
    double denom = 0.0;
    for (FileId f : request.files) {
      denom += static_cast<double>(catalog_->size_of(f)) /
               static_cast<double>(degree_[f]);
    }
    const double density =
        denom > 0.0 ? static_cast<double>(bundle) / denom : 0.0;
    ++stats_.reuse_hits;
    stats_.reuse_hit_bytes += bundle;
    stats_.reuse_density_value += density;
    if (verdict.demand_feasible) {
      ++stats_.demand_hits;
      stats_.demand_hit_bytes += bundle;
      stats_.demand_density_value += density;
    }
    if (verdict.opt_hit) {
      ++stats_.opt_hits;
      stats_.opt_hit_bytes += bundle;
      stats_.opt_density_value += density;
    }
  }
  return verdict;
}

OptgenStats replay_optgen(const FileCatalog& catalog,
                          std::span<const Request> jobs,
                          const OptgenConfig& config) {
  BundleOPTgen oracle(catalog, config);
  for (const Request& job : jobs) oracle.observe(job);
  return oracle.stats();
}

}  // namespace fbc
