// Policy registry: creates any replacement policy by its string name.
// The single entry point bench harnesses, examples and user code use to
// instantiate policies uniformly.
//
// Known names:
//   optfb            OptFileBundle, CacheResident history, Resort greedy
//                    (the paper's recommended configuration)
//   optfb-basic      ... with the Basic (single-sort) greedy
//   optfb-seeded1    ... with the 1-seeded greedy
//   optfb-seeded2    ... with the 2-seeded greedy (improved bound, slow)
//   optfb-full       ... with untruncated history (+ step-3 prefetching)
//   optfb-window     ... with sliding-window history
//   optfb-bytes      ... with byte-weighted request values (targets byte
//                        misses instead of request misses)
//   landlord         bundle-adapted Landlord (paper Algorithm 3)
//   landlord-size    Landlord with size-proportional credits
//   dist-online      distributed online rule (Qin & Etesami): accumulating
//                    equal bundle-cost credit shares, composable across
//                    cluster shards
//   lru, lfu, fifo   classic baselines adapted to bundles
//   lru-2, lru-3     LRU-K (O'Neil et al.): K-th-reference recency
//   gds-unit, gds-size, gds-fetch   GreedyDual-Size cost variants
//   gdsf, gdsf-unit  GreedyDual-Size-Frequency (Cherkasova)
//   random           uniform random eviction
//   lookahead        clairvoyant farthest-next-use (needs the job stream)
//   adaptive         set-dueling meta-policy: OptFileBundle vs Landlord vs
//                    GDSF on sampled request subsets, scored against the
//                    BundleOPTgen oracle, following the per-phase winner
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/policy.hpp"
#include "core/opt_file_bundle.hpp"

namespace fbc {

/// Everything a policy constructor might need.
struct PolicyContext {
  /// Required for optfb* policies.
  const FileCatalog* catalog = nullptr;
  /// Seed for stochastic policies (random).
  std::uint64_t seed = 0x5eedULL;
  /// Future job stream; required for lookahead.
  std::span<const Request> jobs = {};
  /// Window length for optfb-window.
  std::uint64_t history_window_jobs = 1000;
  /// Queue-scheduling aging factor for optfb* policies (0 = pure value
  /// order; see OptFileBundleConfig::aging_factor).
  double aging_factor = 0.0;
  /// Bounded-memory history cap for optfb* policies (0 = unbounded).
  std::size_t history_max_entries = 0;
  /// Selection engine for optfb* policies (Reference until the
  /// incremental engine has soaked; see core/incremental_select.hpp).
  SelectEngine select_engine = SelectEngine::Reference;
  /// adaptive: one request in `duel_sample_period` joins the set-dueling
  /// sample replayed through the shadow caches and the OPT oracle.
  std::size_t duel_sample_period = 8;
  /// adaptive: leader re-election interval, in arrivals.
  std::size_t duel_phase_jobs = 64;
};

/// Creates the policy registered under `name`.
/// Throws std::invalid_argument for unknown names or missing context.
[[nodiscard]] PolicyPtr make_policy(const std::string& name,
                                    const PolicyContext& context);

/// All registered policy names, in display order.
[[nodiscard]] std::vector<std::string> policy_names();

}  // namespace fbc
