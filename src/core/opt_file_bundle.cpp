#include "core/opt_file_bundle.hpp"

#include <algorithm>
#include <utility>

namespace fbc {

OptFileBundlePolicy::OptFileBundlePolicy(const FileCatalog& catalog,
                                         OptFileBundleConfig config)
    : catalog_(&catalog), config_(config), history_(catalog, config.history) {
  if (config_.engine == SelectEngine::Incremental) {
    history_.set_journaling(true);
    incremental_ = std::make_unique<IncrementalSelector>(catalog, history_);
  }
}

std::string OptFileBundlePolicy::name() const {
  std::string label = "optfb";
  if (config_.variant != SelectVariant::Resort)
    label += "-" + to_string(config_.variant);
  if (config_.history.mode != HistoryMode::CacheResident)
    label += "-" + to_string(config_.history.mode);
  if (config_.value_model == ValueModel::BytesWeighted) label += "-bytes";
  if (config_.engine == SelectEngine::Incremental) label += "-inc";
  return label;
}

void OptFileBundlePolicy::on_job_arrival(const Request& request,
                                         const DiskCache&) {
  // Algorithm 2 step 4 (we update L(R) at arrival; the ordering relative
  // to the selection is immaterial because the incoming request's files
  // are reserved outside the selection budget anyway).
  double weight = 1.0;
  if (config_.value_model == ValueModel::BytesWeighted) {
    weight = static_cast<double>(catalog_->request_bytes(request)) /
             static_cast<double>(1024 * 1024);
  }
  history_.observe(request, weight);
}

std::vector<FileId> OptFileBundlePolicy::select_victims(const Request& request,
                                                        Bytes bytes_needed,
                                                        const DiskCache& cache) {
  (void)bytes_needed;  // the reorganization below frees at least this much

  // Algorithm 2 steps 1-2: reserve space for the incoming bundle and pick
  // the best set of historical requests for the remaining budget. We
  // reserve the *whole* bundle (not just the missing part): the resident
  // part of F(r_new) is pinned and stays, so counting it in the budget
  // would overcommit the cache.
  // Files pinned by other in-flight jobs (multi-slot SRM, cluster nodes)
  // cannot be evicted: they stay regardless, so they are free to the
  // selection but their bytes shrink the budget.
  std::vector<FileId> reserved(request.files);
  Bytes pinned_bytes = 0;
  for (FileId id : cache.resident_files()) {
    if (cache.pinned(id) && !request.contains(id)) {
      reserved.push_back(id);
      pinned_bytes += catalog_->size_of(id);
    }
  }
  std::sort(reserved.begin(), reserved.end());

  const Bytes bundle = catalog_->request_bytes(request);
  const Bytes reserved_bytes = bundle + pinned_bytes;
  const Bytes budget = reserved_bytes < cache.capacity()
                           ? cache.capacity() - reserved_bytes
                           : 0;

  ++cost_.decisions;
  if (config_.engine == SelectEngine::Incremental) {
    IncrementalSelector::Selection selection = incremental_->select(
        request, reserved, budget, config_.variant, cache, &cost_);
    last_candidates_ = selection.candidate_count;
    last_selection_ = std::move(selection.result);
  } else {
    std::vector<const HistoryEntry*> candidates =
        history_.candidates(cache, &request);
    last_candidates_ = candidates.size();
    cost_.candidates_scanned += history_.distinct_requests();

    // Stability: OptCacheSelect breaks ranking ties by item index, so list
    // the requests currently supported by the cache first. Without this,
    // near-tied values make successive decisions flip between equivalent
    // bundles, churning the cache (and, under Full/Window history with
    // prefetching, paying for the churn in moved bytes).
    std::stable_partition(
        candidates.begin(), candidates.end(),
        [&cache](const HistoryEntry* e) { return cache.supports(e->request); });

    std::vector<SelectionItem> items;
    items.reserve(candidates.size());
    for (const HistoryEntry* entry : candidates) {
      items.push_back(SelectionItem{&entry->request, entry->value});
    }

    OptCacheSelect selector(*catalog_, history_.degrees());
    last_selection_ =
        selector.select(items, budget, config_.variant, reserved, &cost_);
  }
  const SelectionResult& keep = last_selection_;

  // Step 3 (inverted): everything resident that is neither selected, nor
  // part of the incoming bundle, nor pinned elsewhere is evicted.
  // keep.files is sorted, so a binary search suffices.
  std::vector<FileId> victims;
  for (FileId id : cache.resident_files()) {
    if (std::binary_search(reserved.begin(), reserved.end(), id)) continue;
    if (std::binary_search(keep.files.begin(), keep.files.end(), id)) continue;
    victims.push_back(id);
  }

  // Step 3 verbatim loads F(Opt) \ F(C); under untruncated history the
  // selection can include non-resident files, which we hand to the
  // simulator as prefetches after the admission completes.
  pending_prefetch_.clear();
  if (config_.prefetch_selected) {
    for (FileId id : keep.files) {
      if (!cache.contains(id)) pending_prefetch_.push_back(id);
    }
  }
  return victims;
}

void OptFileBundlePolicy::on_files_loaded(const Request&,
                                          std::span<const FileId> loaded,
                                          const DiskCache&) {
  if (incremental_ != nullptr) incremental_->on_files_loaded(loaded);
}

void OptFileBundlePolicy::on_file_evicted(FileId id) {
  if (incremental_ != nullptr) incremental_->on_file_evicted(id);
}

void OptFileBundlePolicy::on_prefetched(std::span<const FileId> loaded,
                                        const DiskCache&) {
  if (incremental_ != nullptr) incremental_->on_files_loaded(loaded);
}

std::vector<FileId> OptFileBundlePolicy::prefetch(const Request&,
                                                  const DiskCache&) {
  return std::exchange(pending_prefetch_, {});
}

std::size_t OptFileBundlePolicy::choose_next(std::span<const Request> queue,
                                             const DiskCache& cache) {
  return choose_next(queue, {}, cache);
}

std::size_t OptFileBundlePolicy::choose_next(std::span<const Request> queue,
                                             std::span<const double> ages,
                                             const DiskCache&) {
  // Serve the queued request of highest adjusted relative value (§5.3),
  // boosted by waiting time when aging is configured (lockout avoidance,
  // §5.2). The queued occurrence itself counts as one appearance.
  std::size_t best = 0;
  double best_value = -1.0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    double v = history_.relative_value(queue[i], /*extra_weight=*/1.0);
    if (config_.aging_factor > 0.0 && i < ages.size()) {
      v *= 1.0 + config_.aging_factor * ages[i];
    }
    if (v > best_value) {
      best_value = v;
      best = i;
    }
  }
  return best;
}

void OptFileBundlePolicy::reset() {
  history_.clear();
  if (incremental_ != nullptr) incremental_->reset();
  cost_ = SelectionCost{};
  last_selection_ = SelectionResult{};
  last_candidates_ = 0;
  pending_prefetch_.clear();
}

}  // namespace fbc
