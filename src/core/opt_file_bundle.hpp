// OptFileBundle: the paper's cache replacement policy (Algorithm 2).
//
// On each arriving request r_new the policy:
//   1. records r_new in the request history L(R);
//   2. when the missing files of r_new do not fit, reserves space for the
//      whole bundle F(r_new) and runs OptCacheSelect over the history
//      candidates with budget s(C) - s(F(r_new)), treating F(r_new) as
//      free (those files stay regardless);
//   3. evicts every resident file that is neither in the selected optimal
//      set F(Opt) nor in F(r_new).
//
// The history truncation mode and the greedy variant are configurable; the
// defaults (CacheResident + Resort) are the combination the paper settles
// on for its main experiments (§5.3, Fig. 5 and the "Note" in §3).
//
// Queue scheduling: choose_next() returns the queued request of highest
// adjusted relative value v'(r), implementing the §5.3 batching study
// (Fig. 9). The occurrence being scheduled is itself counted with weight 1
// on top of the historical value, so never-seen requests rank by
// 1 / adjusted bundle size instead of all tying at zero.
#pragma once

#include <memory>

#include "cache/policy.hpp"
#include "core/incremental_select.hpp"
#include "core/opt_cache_select.hpp"
#include "core/request_history.hpp"

namespace fbc {

/// How the value v(r) of a request accrues per occurrence. The paper uses
/// a plain counter ("a counter incremented by 1 each time this request
/// appeared") but notes v(r) "can also reflect request priority or some
/// other measure of importance"; BytesWeighted credits each occurrence
/// with the bundle's size in MiB, which steers the selection toward
/// minimizing byte misses instead of request misses.
enum class ValueModel { Popularity, BytesWeighted };

/// Configuration of the OptFileBundle policy.
struct OptFileBundleConfig {
  RequestHistoryConfig history = {};
  SelectVariant variant = SelectVariant::Resort;
  ValueModel value_model = ValueModel::Popularity;
  /// Load F(Opt) \ F(C) speculatively (Algorithm 2 step 3 verbatim). Only
  /// meaningful under Full/Window history, where the selection can pick
  /// requests whose files are not resident; with CacheResident candidates
  /// F(Opt) is always resident and this flag is a no-op.
  bool prefetch_selected = false;
  /// Queue-scheduling aging: a queued request's score is
  /// v'(r) * (1 + aging_factor * age), where age counts services it has
  /// waited through. 0 = pure value order (can lock out rare requests in
  /// the sliding queue, paper §5.2); > 0 bounds waiting times.
  double aging_factor = 0.0;
  /// Which selection engine runs the replacement decision. Both produce
  /// identical results (see core/incremental_select.hpp); Reference is the
  /// default until the incremental engine has soaked in production.
  SelectEngine engine = SelectEngine::Reference;
};

/// The paper's bundle-aware replacement policy (see file comment).
class OptFileBundlePolicy : public ReplacementPolicy {
 public:
  /// The catalog must outlive the policy.
  explicit OptFileBundlePolicy(const FileCatalog& catalog,
                               OptFileBundleConfig config = {});

  [[nodiscard]] std::string name() const override;

  void on_job_arrival(const Request& request, const DiskCache& cache) override;

  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;

  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override;

  void on_file_evicted(FileId id) override;

  void on_prefetched(std::span<const FileId> loaded,
                     const DiskCache& cache) override;

  [[nodiscard]] std::vector<FileId> prefetch(const Request& request,
                                             const DiskCache& cache) override;

  [[nodiscard]] const SelectionCost* selection_cost() const override {
    return &cost_;
  }

  [[nodiscard]] std::size_t choose_next(std::span<const Request> queue,
                                        const DiskCache& cache) override;

  [[nodiscard]] std::size_t choose_next(std::span<const Request> queue,
                                        std::span<const double> ages,
                                        const DiskCache& cache) override;

  void reset() override;

  /// The underlying history (introspection for tests and tools).
  [[nodiscard]] const RequestHistory& history() const noexcept {
    return history_;
  }

  /// Number of candidate requests considered by the last replacement
  /// decision (the paper's computational-cost discussion, §5.3).
  [[nodiscard]] std::size_t last_candidate_count() const noexcept {
    return last_candidates_;
  }

  /// Full outcome of the last replacement decision (differential testing:
  /// the engine-diff oracle compares these field by field).
  [[nodiscard]] const SelectionResult& last_selection() const noexcept {
    return last_selection_;
  }

  /// The configured selection engine.
  [[nodiscard]] SelectEngine engine() const noexcept { return config_.engine; }

 private:
  const FileCatalog* catalog_;
  OptFileBundleConfig config_;
  RequestHistory history_;
  std::unique_ptr<IncrementalSelector> incremental_;
  SelectionCost cost_;
  SelectionResult last_selection_;
  std::size_t last_candidates_ = 0;
  std::vector<FileId> pending_prefetch_;
};

}  // namespace fbc
