// IncrementalSelector: the incremental selection engine for the
// OptFileBundle hot path.
//
// The reference path rebuilds everything per replacement decision: it
// scans the whole history to collect candidates (testing cache.supports
// per entry), recomputes every adjusted relative value v'(r) from scratch
// and re-derives the file->item inverted index -- O(|L(R)|) work plus the
// sum of all candidate bundle sizes per miss (the paper's §5.2 scaling
// bottleneck, the reason Fig. 5 studies history truncation at all).
//
// This engine maintains that state *across* decisions and reconciles it
// from two event streams instead:
//
//   * the RequestHistory change-journal (core/request_history.hpp):
//     added entries, value bumps, and exact per-file degree deltas from
//     observation and compaction. A degree delta on file f dirties only
//     the entries containing f (found via a persistent inverted index);
//     dirty entries are lazily rescored the next time they are candidates.
//     A compaction remap invalidates all cached indices and forces a full
//     rebuild -- rare by construction (at most every max_entries/4 jobs).
//
//   * residency events forwarded by the policy (on_files_loaded /
//     on_file_evicted / on_prefetched): a per-file resident bitmap and a
//     per-entry missing-file count make "is this entry supported by the
//     cache?" an O(1) lookup, and the CacheResident candidate set is
//     maintained as an exact set instead of being re-derived by scanning.
//
// Per decision the engine then pays O(|candidates|) to assemble the
// selection (inherent: the greedy admits from all of them) but rescores
// only entries that are dirty or whose bundles intersect the reserved
// (free) file set, instead of all of them.
//
// Equivalence contract: select() returns byte-identical SelectionResults
// to the reference path (same chosen indices, same files, bitwise-equal
// total_value) for every SelectVariant x HistoryMode. This holds because
//   (a) the candidate list is assembled in the exact order the reference
//       produces (history order, mode-filtered, incoming excluded,
//       supported-first stable partition), so item indices -- and with
//       them every tie-break -- coincide;
//   (b) floating-point sums are never "adjusted": a cached v'(r)
//       denominator is only reused when it is the *same* sum (same files,
//       same degrees, same addition order); anything else is recomputed in
//       bundle order exactly as the reference does (FP addition is not
//       associative, so reusing a differently-ordered sum would diverge);
//   (c) the greedy drain itself replays the reference arithmetic: the
//       heap comparator never lets two live distinct items compare equal
//       (key, then index), so push-order differences cannot change the
//       pop order, and coverage subtractions happen in the same bundle
//       order on the same values.
// tests/core/test_incremental_select.cpp and the fbcfuzz --engine-diff
// campaign enforce the contract; docs/ALGORITHMS.md discusses the design.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "cache/catalog.hpp"
#include "cache/metrics.hpp"
#include "core/opt_cache_select.hpp"
#include "core/request_history.hpp"

namespace fbc {

/// Which implementation OptFileBundlePolicy uses for its replacement
/// decisions. Both produce identical results; Reference stays the default
/// until the incremental engine has soaked (it is the oracle the
/// differential tests trust).
enum class SelectEngine { Reference, Incremental };

/// Returns "reference" / "incremental".
[[nodiscard]] std::string to_string(SelectEngine engine);

/// Parses "reference" / "incremental" (throws std::invalid_argument
/// otherwise). The inverse of to_string, shared by every CLI that exposes
/// an engine knob (fbcsim --engine, fbcd/fbcload --engine).
[[nodiscard]] SelectEngine parse_select_engine(const std::string& name);

/// The incremental engine (see file comment). Owned by
/// OptFileBundlePolicy, which enables journaling on the shared history and
/// forwards residency events.
class IncrementalSelector {
 public:
  /// Outcome of one replacement decision.
  struct Selection {
    SelectionResult result;
    /// Size of the candidate list (== the reference path's count).
    std::size_t candidate_count = 0;
  };

  /// Both referents must outlive the selector. The history should have
  /// journaling enabled before any request is observed; entries that
  /// predate journaling are picked up by the first full sync.
  IncrementalSelector(const FileCatalog& catalog, RequestHistory& history);

  // -- residency event stream (forwarded by the policy) -------------------

  /// Files inserted into the cache (demand load or prefetch admission).
  void on_files_loaded(std::span<const FileId> loaded);

  /// A resident file was evicted.
  void on_file_evicted(FileId id);

  // -- the decision -------------------------------------------------------

  /// Runs the selection the reference path would run with the same inputs:
  /// candidates from the shared history against `cache`, `incoming`
  /// excluded, files in `free_files` free, `budget` bytes of capacity.
  /// Counters are accumulated into `cost` when non-null.
  [[nodiscard]] Selection select(const Request& incoming,
                                 std::span<const FileId> free_files,
                                 Bytes budget, SelectVariant variant,
                                 const DiskCache& cache, SelectionCost* cost);

  /// Drops all derived state; the next select() resynchronizes from the
  /// history and cache (used by policy reset()).
  void reset();

 private:
  // -- maintenance --------------------------------------------------------
  void sync(const DiskCache& cache);
  void drain_journal();
  void full_rebuild();
  void grow_entry_arrays(std::size_t count);
  void attach_entry(std::size_t index);
  void add_supported(std::uint32_t entry);
  void remove_supported(std::uint32_t entry);
  /// Refreshes the cached (all-files) denominator of a dirty entry.
  void ensure_scored(std::uint32_t entry, SelectionCost* cost);
  [[nodiscard]] double adjusted_size(FileId id) const noexcept;
  [[nodiscard]] bool is_free(FileId id) const noexcept;

  // -- per-decision selection (reference arithmetic replayed) -------------
  void collect_candidates(const Request& incoming, const DiskCache& cache,
                          SelectionCost* cost);
  void build_initial_sizes(SelectionCost* cost);
  [[nodiscard]] SelectionResult run_basic(Bytes budget, SelectionCost* cost);
  [[nodiscard]] SelectionResult run_resort(Bytes budget,
                                           std::span<const std::size_t> seed,
                                           SelectionCost* cost);
  [[nodiscard]] SelectionResult run_seeded(Bytes budget, int k,
                                           SelectionCost* cost);
  void finalize_files(SelectionResult& result) const;
  void apply_single_override(Bytes budget, SelectionResult& result) const;

  const FileCatalog* catalog_;
  RequestHistory* history_;

  // Persistent per-entry state, index-aligned with history entries().
  std::vector<double> adj0_;           ///< cached sum of s'(f) over ALL files
  std::vector<Bytes> real0_;           ///< cached sum of s(f) over ALL files
  std::vector<std::uint32_t> missing_; ///< non-resident files of the bundle
  std::vector<std::uint8_t> dirty_;    ///< adj0_/real0_ stale (degree change)

  // Persistent file-keyed state.
  std::vector<std::vector<std::uint32_t>> inverted_;  ///< file -> entries
  std::vector<std::uint8_t> resident_;                ///< residency bitmap

  // Exact supported-entry set (missing_ == 0), swap-remove semantics.
  std::vector<std::uint32_t> supported_;
  std::vector<std::uint32_t> supported_pos_;  ///< entry -> pos+1 (0 absent)

  bool synced_ = false;

  // Per-decision scratch, epoch-stamped so it never needs clearing.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> touch_epoch_;  ///< entry intersects free set
  std::vector<std::uint64_t> cand_epoch_;   ///< entry is a candidate
  std::vector<std::uint32_t> cand_pos_;     ///< entry -> candidate index
  std::vector<std::uint32_t> cand_;         ///< candidate -> entry index
  std::vector<FileId> free_sorted_;
  std::vector<double> values_;     ///< candidate values (v(r))
  std::vector<double> adj_init_;   ///< candidate initial adjusted sizes
  std::vector<Bytes> real_init_;   ///< candidate initial real sizes

  // Per-greedy-run scratch (seeded variants run many greedy passes).
  std::uint64_t run_id_ = 0;
  std::vector<std::uint64_t> covered_run_;  ///< file covered in current run
  std::vector<double> adj_;
  std::vector<Bytes> real_;
  std::vector<std::uint8_t> selected_;
  std::vector<std::uint8_t> dead_;
  std::vector<std::uint32_t> version_;

  /// run_resort's lazy-deletion heap node: candidate index plus its
  /// version at push time (stale versions are skipped on pop).
  struct HeapEntry {
    double key;
    std::uint32_t idx;
    std::uint32_t version;
  };
  std::vector<HeapEntry> heap_;  ///< reused heap storage (cleared per run)
};

}  // namespace fbc
