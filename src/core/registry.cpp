#include "core/registry.hpp"

#include <memory>
#include <stdexcept>

#include "core/optgen.hpp"
#include "policies/adaptive.hpp"
#include "policies/dist_online.hpp"
#include "policies/fifo.hpp"
#include "policies/gds.hpp"
#include "policies/gdsf.hpp"
#include "policies/landlord.hpp"
#include "policies/lfu.hpp"
#include "policies/lookahead.hpp"
#include "policies/lru.hpp"
#include "policies/lru_k.hpp"
#include "policies/random_evict.hpp"

namespace fbc {
namespace {

const FileCatalog& require_catalog(const PolicyContext& context,
                                   const std::string& name) {
  if (context.catalog == nullptr)
    throw std::invalid_argument("make_policy(" + name +
                                "): context.catalog is required");
  return *context.catalog;
}

PolicyPtr make_optfb(const PolicyContext& context, const std::string& name,
                     OptFileBundleConfig config) {
  config.aging_factor = context.aging_factor;
  config.history.max_entries = context.history_max_entries;
  config.engine = context.select_engine;
  return std::make_unique<OptFileBundlePolicy>(require_catalog(context, name),
                                               config);
}

}  // namespace

PolicyPtr make_policy(const std::string& name, const PolicyContext& context) {
  if (name == "optfb") {
    return make_optfb(context, name, {});
  }
  if (name == "optfb-basic") {
    OptFileBundleConfig config;
    config.variant = SelectVariant::Basic;
    return make_optfb(context, name, config);
  }
  if (name == "optfb-seeded1") {
    OptFileBundleConfig config;
    config.variant = SelectVariant::Seeded1;
    return make_optfb(context, name, config);
  }
  if (name == "optfb-seeded2") {
    OptFileBundleConfig config;
    config.variant = SelectVariant::Seeded2;
    return make_optfb(context, name, config);
  }
  if (name == "optfb-full") {
    OptFileBundleConfig config;
    config.history.mode = HistoryMode::Full;
    config.prefetch_selected = true;
    return make_optfb(context, name, config);
  }
  if (name == "optfb-window") {
    OptFileBundleConfig config;
    config.history.mode = HistoryMode::Window;
    config.history.window_jobs = context.history_window_jobs;
    config.prefetch_selected = true;
    return make_optfb(context, name, config);
  }
  if (name == "optfb-bytes") {
    OptFileBundleConfig config;
    config.value_model = ValueModel::BytesWeighted;
    return make_optfb(context, name, config);
  }
  if (name == "landlord") {
    return std::make_unique<LandlordPolicy>(LandlordPolicy::CreditModel::Uniform);
  }
  if (name == "landlord-size") {
    return std::make_unique<LandlordPolicy>(
        LandlordPolicy::CreditModel::ProportionalToSize);
  }
  if (name == "dist-online") {
    return std::make_unique<DistOnlinePolicy>(require_catalog(context, name));
  }
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "lru-2") return std::make_unique<LruKPolicy>(2);
  if (name == "lru-3") return std::make_unique<LruKPolicy>(3);
  if (name == "lfu") return std::make_unique<LfuPolicy>();
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "gdsf") return std::make_unique<GdsfPolicy>(true);
  if (name == "gdsf-unit") return std::make_unique<GdsfPolicy>(false);
  if (name == "gds-unit") return std::make_unique<GdsPolicy>(GdsCost::Unit);
  if (name == "gds-size") return std::make_unique<GdsPolicy>(GdsCost::Size);
  if (name == "gds-fetch")
    return std::make_unique<GdsPolicy>(GdsCost::FetchTime);
  if (name == "random") return std::make_unique<RandomPolicy>(context.seed);
  if (name == "adaptive") {
    const FileCatalog& catalog = require_catalog(context, name);
    std::vector<AdaptiveContender> contenders;
    for (const char* contender : {"optfb", "landlord", "gdsf"}) {
      contenders.push_back(AdaptiveContender{
          contender, make_policy(contender, context),
          make_policy(contender, context)});
    }
    AdaptiveConfig config;
    config.seed = context.seed;
    config.sample_period = context.duel_sample_period;
    config.phase_jobs = context.duel_phase_jobs;
    // The training signal: a BundleOPTgen oracle fed the same sampled
    // subsequence the shadow caches replay, created lazily once the real
    // cache capacity is known.
    AdaptivePolicy::OracleFactory oracle = [&catalog](Bytes capacity) {
      auto gen = std::make_shared<BundleOPTgen>(
          catalog, OptgenConfig{capacity, /*window_quanta=*/4096});
      return [gen](const Request& request) {
        return gen->observe(request).opt_hit;
      };
    };
    return std::make_unique<AdaptivePolicy>(catalog, config,
                                            std::move(contenders),
                                            std::move(oracle));
  }
  if (name == "lookahead") {
    if (context.jobs.empty())
      throw std::invalid_argument(
          "make_policy(lookahead): context.jobs is required");
    return std::make_unique<LookaheadPolicy>(context.jobs);
  }
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

std::vector<std::string> policy_names() {
  return {"optfb",        "optfb-basic",  "optfb-seeded1", "optfb-seeded2",
          "optfb-full",   "optfb-window", "optfb-bytes",   "landlord",
          "landlord-size", "dist-online", "lru",           "lru-2",
          "lru-3",        "lfu",          "fifo",          "gds-unit",
          "gds-size",     "gds-fetch",    "gdsf",          "gdsf-unit",
          "random",       "lookahead",    "adaptive"};
}

}  // namespace fbc
