// Trace serialization: save/replay workloads as plain text.
//
// Format v1 (line-oriented, '#' comments allowed anywhere):
//
//   fbc-trace v1
//   files <n>
//   <size_bytes>            # one line per file, FileId == line index
//   ...
//   jobs <m>
//   <k> <f_1> ... <f_k>     # one line per job: bundle size then file ids
//   ...
//
// Format v2 adds wall-clock timing per job for the timed SRM:
//
//   fbc-trace v2
//   files <n> ... (as v1)
//   jobs <m>
//   <arrival_s> <service_s> <k> <f_1> ... <f_k>
//
// Format v3 prepends a metadata section so traces can be self-contained
// reproducers (fbcfuzz shrunk failures record the oracle, policy and cache
// configuration that triggered them):
//
//   fbc-trace v3
//   meta <k>
//   <key> <value...>        # k lines; key is one token, value is the rest
//   files <n> ... (as v1)
//   jobs <m> ... (as v1/v2)
//
// The meta key `timed` (value `1`) is reserved: it marks v3 job rows as
// carrying the v2 timing prefix and is consumed by the parser rather than
// surfaced in Trace::meta.
//
// Traces decouple workload generation from simulation, let experiments be
// archived/exchanged, and let users feed real SRM logs into the simulator.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/types.hpp"

namespace fbc {

/// A replayable job stream plus the catalog it references. When timed
/// (v2), `arrival_s` and `service_s` run parallel to `jobs` (arrivals
/// non-decreasing); untimed traces leave them empty. `meta` holds ordered
/// key/value annotations (v3); fuzzer reproducers use it to record the
/// failing oracle and simulator configuration.
struct Trace {
  FileCatalog catalog;
  std::vector<Request> jobs;
  std::vector<double> arrival_s;
  std::vector<double> service_s;
  std::vector<std::pair<std::string, std::string>> meta;

  /// True when per-job timing is present.
  [[nodiscard]] bool is_timed() const noexcept {
    return !arrival_s.empty() && arrival_s.size() == jobs.size() &&
           service_s.size() == jobs.size();
  }

  /// First value stored under `key`, or nullptr when absent.
  [[nodiscard]] const std::string* meta_value(
      std::string_view key) const noexcept;

  /// Appends (or does not deduplicate) a meta entry.
  void set_meta(std::string key, std::string value) {
    meta.emplace_back(std::move(key), std::move(value));
  }
};

/// Writes `trace` in the lowest text format version that can represent it
/// (v1 plain, v2 timed, v3 when meta entries are present). Throws
/// std::invalid_argument for malformed meta entries (empty key, key with
/// whitespace, or values containing newlines).
void write_trace(std::ostream& os, const Trace& trace);

/// Writes `trace` to `path`; throws std::runtime_error on I/O failure.
void save_trace(const std::string& path, const Trace& trace);

/// Parses the v1 text format. Throws std::runtime_error with a line number
/// on malformed input (bad magic, out-of-range file ids, truncation...).
[[nodiscard]] Trace read_trace(std::istream& is);

/// Reads a trace from `path`; throws std::runtime_error on I/O failure.
[[nodiscard]] Trace load_trace(const std::string& path);

}  // namespace fbc
