// File pool generation: populates a FileCatalog with randomly sized files.
//
// The paper's setup (§5.1): "the size of each file was generated randomly
// between a minimum size of 1MB and a maximum size expressed as a
// percentage of defined cache size that varied from 1% to 10%". Uniform is
// therefore the default; log-normal is provided as an extension since real
// MSS file-size populations are heavy-tailed.
#pragma once

#include <cstddef>

#include "cache/catalog.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace fbc {

/// Shape of the file-size distribution.
enum class FileSizeModel {
  Uniform,    ///< uniform in [min_bytes, max_bytes] (the paper's model)
  LogNormal,  ///< log-normal clamped to [min_bytes, max_bytes] (extension)
  Fixed,      ///< every file exactly min_bytes (unit-size analyses)
};

/// Parameters for file pool generation.
struct FilePoolConfig {
  std::size_t num_files = 1000;
  Bytes min_bytes = 1 * MiB;
  Bytes max_bytes = 100 * MiB;
  FileSizeModel model = FileSizeModel::Uniform;
  /// LogNormal only: sigma of the underlying normal (mu is derived so the
  /// median sits at the geometric mean of min/max).
  double lognormal_sigma = 1.0;
};

/// Generates `config.num_files` files and returns the populated catalog.
/// Throws std::invalid_argument on inconsistent bounds.
[[nodiscard]] FileCatalog generate_file_pool(const FilePoolConfig& config,
                                             Rng& rng);

}  // namespace fbc
