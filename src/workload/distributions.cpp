#include "workload/distributions.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fbc {

AliasSampler::AliasSampler(std::span<const double> weights) {
  if (weights.empty())
    throw std::invalid_argument("AliasSampler: empty weight vector");
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w))
      throw std::invalid_argument("AliasSampler: weights must be finite, >= 0");
    sum += w;
  }
  if (sum <= 0.0)
    throw std::invalid_argument("AliasSampler: all weights are zero");

  const std::size_t n = weights.size();
  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / sum;

  // Vose's stable construction of the alias table.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets are (numerically) exactly 1.
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Rng& rng) const noexcept {
  const std::size_t bucket = rng.index(prob_.size());
  return rng.uniform_double() < prob_[bucket] ? bucket : alias_[bucket];
}

namespace {
std::vector<double> zipf_weights(std::size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (alpha < 0.0)
    throw std::invalid_argument("ZipfSampler: alpha must be >= 0");
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
  }
  return w;
}
}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double alpha)
    : alpha_(alpha), alias_(zipf_weights(n, alpha)) {}

UniformIndexSampler::UniformIndexSampler(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("UniformIndexSampler: n must be > 0");
}

}  // namespace fbc
