#include "workload/file_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fbc {

FileCatalog generate_file_pool(const FilePoolConfig& config, Rng& rng) {
  if (config.num_files == 0)
    throw std::invalid_argument("generate_file_pool: num_files must be > 0");
  if (config.min_bytes == 0)
    throw std::invalid_argument("generate_file_pool: min_bytes must be > 0");
  if (config.max_bytes < config.min_bytes)
    throw std::invalid_argument(
        "generate_file_pool: max_bytes < min_bytes");

  FileCatalog catalog;
  switch (config.model) {
    case FileSizeModel::Uniform:
      for (std::size_t i = 0; i < config.num_files; ++i) {
        catalog.add_file(rng.uniform_u64(config.min_bytes, config.max_bytes));
      }
      break;
    case FileSizeModel::Fixed:
      for (std::size_t i = 0; i < config.num_files; ++i) {
        catalog.add_file(config.min_bytes);
      }
      break;
    case FileSizeModel::LogNormal: {
      const double lo = std::log(static_cast<double>(config.min_bytes));
      const double hi = std::log(static_cast<double>(config.max_bytes));
      const double mu = 0.5 * (lo + hi);
      const double sigma = config.lognormal_sigma;
      for (std::size_t i = 0; i < config.num_files; ++i) {
        // Box-Muller from our deterministic RNG (std::normal_distribution
        // is not bit-stable across standard libraries).
        const double u1 = std::max(rng.uniform_double(), 1e-300);
        const double u2 = rng.uniform_double();
        const double z =
            std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
        const double raw = std::exp(mu + sigma * z);
        const double clamped =
            std::clamp(raw, static_cast<double>(config.min_bytes),
                       static_cast<double>(config.max_bytes));
        catalog.add_file(static_cast<Bytes>(clamped));
      }
      break;
    }
  }
  return catalog;
}

}  // namespace fbc
