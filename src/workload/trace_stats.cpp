#include "workload/trace_stats.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_map>

#include "util/bytes.hpp"
#include "util/table.hpp"

namespace fbc {

TraceStats compute_trace_stats(const Trace& trace) {
  TraceStats stats;

  stats.file_count = trace.catalog.count();
  stats.total_file_bytes = trace.catalog.total_bytes();
  for (Bytes s : trace.catalog.sizes()) {
    stats.file_bytes.add(static_cast<double>(s));
  }

  stats.job_count = trace.jobs.size();
  std::unordered_map<Request, std::uint64_t, RequestHash> occurrences;
  std::vector<std::uint32_t> degree(trace.catalog.count(), 0);
  std::vector<bool> touched(trace.catalog.count(), false);

  for (const Request& job : trace.jobs) {
    stats.bundle_files.add(static_cast<double>(job.size()));
    stats.bundle_bytes.add(
        static_cast<double>(trace.catalog.request_bytes(job)));
    auto [it, inserted] = occurrences.try_emplace(job, 0);
    ++it->second;
    if (inserted) {
      for (FileId id : job.files) ++degree[id];
    }
    for (FileId id : job.files) {
      if (!touched[id]) {
        touched[id] = true;
        stats.touched_bytes += trace.catalog.size_of(id);
      }
    }
  }

  stats.distinct_requests = occurrences.size();
  std::vector<std::uint64_t> counts;
  counts.reserve(occurrences.size());
  // Unordered iteration is fine here: counts are sorted before use, so
  // the result does not depend on bucket order. fbclint:ignore(L005)
  for (const auto& [request, count] : occurrences) counts.push_back(count);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  if (!counts.empty()) {
    stats.top_request_count = counts.front();
    const std::size_t decile = std::max<std::size_t>(1, counts.size() / 10);
    std::uint64_t decile_jobs = 0;
    for (std::size_t i = 0; i < decile; ++i) decile_jobs += counts[i];
    stats.top_decile_job_share =
        stats.job_count == 0
            ? 0.0
            : static_cast<double>(decile_jobs) /
                  static_cast<double>(stats.job_count);
  }

  for (std::size_t f = 0; f < degree.size(); ++f) {
    if (degree[f] == 0) {
      ++stats.unused_files;
      continue;
    }
    stats.file_degree.add(static_cast<double>(degree[f]));
    stats.max_file_degree = std::max(stats.max_file_degree, degree[f]);
  }
  return stats;
}

void print_trace_stats(std::ostream& os, const TraceStats& stats) {
  TextTable table({"metric", "value"});
  auto row = [&table](const std::string& name, const std::string& value) {
    table.add_row({name, value});
  };
  row("files", std::to_string(stats.file_count));
  row("total file bytes", format_bytes(stats.total_file_bytes));
  row("file size mean",
      format_bytes(static_cast<Bytes>(stats.file_bytes.mean())));
  row("file size min/max",
      format_bytes(static_cast<Bytes>(stats.file_bytes.min())) + " / " +
          format_bytes(static_cast<Bytes>(stats.file_bytes.max())));
  row("jobs", std::to_string(stats.job_count));
  row("files per bundle (mean)", format_double(stats.bundle_files.mean()));
  row("files per bundle (max)", format_double(stats.bundle_files.max()));
  row("bytes per bundle (mean)",
      format_bytes(static_cast<Bytes>(stats.bundle_bytes.mean())));
  row("distinct requests", std::to_string(stats.distinct_requests));
  row("most popular request count",
      std::to_string(stats.top_request_count));
  row("top-decile job share", format_double(stats.top_decile_job_share));
  row("max file degree d", std::to_string(stats.max_file_degree));
  row("mean file degree", format_double(stats.file_degree.mean()));
  row("unused files", std::to_string(stats.unused_files));
  row("touched bytes", format_bytes(stats.touched_bytes));
  table.print(os);
}

}  // namespace fbc
