#include "workload/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fbc {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line) + ": " + what);
}

/// Reads the next non-empty, non-comment line; returns false on EOF.
bool next_line(std::istream& is, std::string& out, std::size_t& line_no) {
  while (std::getline(is, out)) {
    ++line_no;
    const auto first = out.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (out[first] == '#') continue;
    return true;
  }
  return false;
}

/// Trims leading/trailing blanks from a meta value.
std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

}  // namespace

const std::string* Trace::meta_value(std::string_view key) const noexcept {
  for (const auto& [k, v] : meta) {
    if (k == key) return &v;
  }
  return nullptr;
}

void write_trace(std::ostream& os, const Trace& trace) {
  const bool timed = trace.is_timed();
  const bool v3 = !trace.meta.empty();
  // Validate before emitting anything: a throw mid-write would leave a
  // header-only stub on disk that read_trace rejects, which is worse
  // than no file at all for a fuzz reproducer.
  if (v3) {
    for (const auto& [key, value] : trace.meta) {
      if (key.empty() || key.find_first_of(" \t\r\n") != std::string::npos)
        throw std::invalid_argument("write_trace: invalid meta key '" + key +
                                    "'");
      if (value.find('\n') != std::string::npos)
        throw std::invalid_argument("write_trace: meta value for '" + key +
                                    "' contains a newline");
    }
  }
  os << (v3 ? "fbc-trace v3\n" : timed ? "fbc-trace v2\n" : "fbc-trace v1\n");
  if (v3) {
    // The reserved `timed` entry is wire-format only (consumed on read).
    os << "meta " << (trace.meta.size() + (timed ? 1 : 0)) << "\n";
    for (const auto& [key, value] : trace.meta) {
      os << key << ' ' << value << "\n";
    }
    if (timed) os << "timed 1\n";
  }
  os << "files " << trace.catalog.count() << "\n";
  for (Bytes size : trace.catalog.sizes()) os << size << "\n";
  os << "jobs " << trace.jobs.size() << "\n";
  for (std::size_t j = 0; j < trace.jobs.size(); ++j) {
    if (timed) os << trace.arrival_s[j] << ' ' << trace.service_s[j] << ' ';
    const Request& job = trace.jobs[j];
    os << job.size();
    for (FileId id : job.files) os << ' ' << id;
    os << "\n";
  }
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  write_trace(out, trace);
  if (!out) throw std::runtime_error("save_trace: write failed for " + path);
}

Trace read_trace(std::istream& is) {
  std::size_t line_no = 0;
  std::string line;

  if (!next_line(is, line, line_no)) fail(line_no, "empty input");
  bool timed = false;
  bool has_meta = false;
  if (line.find("fbc-trace v3") != std::string::npos) {
    has_meta = true;
  } else if (line.find("fbc-trace v2") != std::string::npos) {
    timed = true;
  } else if (line.find("fbc-trace v1") == std::string::npos) {
    fail(line_no,
         "bad magic, expected 'fbc-trace v1', 'fbc-trace v2' or "
         "'fbc-trace v3'");
  }

  Trace trace;
  std::string keyword;
  if (has_meta) {
    if (!next_line(is, line, line_no)) fail(line_no, "missing 'meta' header");
    std::istringstream meta_header(line);
    std::size_t num_meta = 0;
    if (!(meta_header >> keyword >> num_meta) || keyword != "meta")
      fail(line_no, "expected 'meta <k>'");
    for (std::size_t i = 0; i < num_meta; ++i) {
      if (!next_line(is, line, line_no)) fail(line_no, "truncated meta table");
      std::istringstream row(line);
      std::string key;
      if (!(row >> key)) fail(line_no, "meta entry needs a key");
      std::string value;
      std::getline(row, value);
      value = trim(value);
      if (key == "timed") {
        timed = value == "1";  // reserved wire-format flag, not user meta
      } else {
        trace.set_meta(std::move(key), std::move(value));
      }
    }
  }

  if (!next_line(is, line, line_no)) fail(line_no, "missing 'files' header");
  std::istringstream files_header(line);
  std::size_t num_files = 0;
  if (!(files_header >> keyword >> num_files) || keyword != "files")
    fail(line_no, "expected 'files <n>'");
  for (std::size_t i = 0; i < num_files; ++i) {
    if (!next_line(is, line, line_no)) fail(line_no, "truncated file table");
    std::istringstream row(line);
    Bytes size = 0;
    if (!(row >> size) || size == 0)
      fail(line_no, "file size must be a positive integer");
    trace.catalog.add_file(size);
  }

  if (!next_line(is, line, line_no)) fail(line_no, "missing 'jobs' header");
  std::istringstream jobs_header(line);
  std::size_t num_jobs = 0;
  if (!(jobs_header >> keyword >> num_jobs) || keyword != "jobs")
    fail(line_no, "expected 'jobs <m>'");

  trace.jobs.reserve(num_jobs);
  double previous_arrival = 0.0;
  for (std::size_t j = 0; j < num_jobs; ++j) {
    if (!next_line(is, line, line_no)) fail(line_no, "truncated job list");
    std::istringstream row(line);
    if (timed) {
      double arrival = 0.0, service = 0.0;
      if (!(row >> arrival >> service))
        fail(line_no, "timed job needs '<arrival_s> <service_s>' prefix");
      if (arrival < previous_arrival)
        fail(line_no, "arrivals must be non-decreasing");
      if (service < 0.0) fail(line_no, "service time must be >= 0");
      previous_arrival = arrival;
      trace.arrival_s.push_back(arrival);
      trace.service_s.push_back(service);
    }
    std::size_t count = 0;
    if (!(row >> count) || count == 0)
      fail(line_no, "job must request at least one file");
    std::vector<FileId> files;
    files.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      std::uint64_t id = 0;
      if (!(row >> id)) fail(line_no, "job row shorter than its count");
      if (id >= trace.catalog.count()) fail(line_no, "file id out of range");
      files.push_back(static_cast<FileId>(id));
    }
    std::uint64_t extra = 0;
    if (row >> extra) fail(line_no, "job row longer than its count");
    trace.jobs.emplace_back(std::move(files));
  }
  return trace;
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  return read_trace(in);
}

}  // namespace fbc
