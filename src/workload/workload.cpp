#include "workload/workload.hpp"

#include <cmath>
#include <stdexcept>

#include "workload/distributions.hpp"

namespace fbc {

std::string to_string(Popularity p) {
  switch (p) {
    case Popularity::Uniform: return "uniform";
    case Popularity::Zipf: return "zipf";
  }
  return "?";
}

double Workload::mean_request_bytes() const {
  if (pool.empty()) return 0.0;
  Bytes total = 0;
  for (const Request& r : pool) total += catalog.request_bytes(r);
  return static_cast<double>(total) / static_cast<double>(pool.size());
}

double Workload::requests_per_cache(Bytes cache_bytes) const {
  const double mean = mean_request_bytes();
  if (mean <= 0.0) return 0.0;
  return static_cast<double>(cache_bytes) / mean;
}

Workload generate_workload(const WorkloadConfig& config) {
  if (config.cache_bytes == 0)
    throw std::invalid_argument("generate_workload: cache_bytes must be > 0");
  if (config.max_file_frac <= 0.0 || config.max_file_frac > 1.0)
    throw std::invalid_argument(
        "generate_workload: max_file_frac must be in (0, 1]");
  if (config.max_bundle_frac <= 0.0 || config.max_bundle_frac > 1.0)
    throw std::invalid_argument(
        "generate_workload: max_bundle_frac must be in (0, 1]");

  Rng rng(config.seed);
  Workload w;

  FilePoolConfig files;
  files.num_files = config.num_files;
  files.min_bytes = config.min_file_bytes;
  files.max_bytes = std::max(
      config.min_file_bytes,
      static_cast<Bytes>(config.max_file_frac *
                         static_cast<double>(config.cache_bytes)));
  files.model = config.file_size_model;
  w.catalog = generate_file_pool(files, rng);

  RequestPoolConfig requests;
  requests.num_requests = config.num_requests;
  requests.min_files = config.min_bundle_files;
  requests.max_files = std::min(config.max_bundle_files, config.num_files);
  requests.max_bundle_bytes = static_cast<Bytes>(
      config.max_bundle_frac * static_cast<double>(config.cache_bytes));
  w.pool = generate_request_pool(requests, w.catalog, rng);

  // Popularity ranks are assigned to a random permutation of the pool so
  // the most popular bundle is not systematically the first generated.
  std::vector<std::size_t> rank_to_pool(w.pool.size());
  for (std::size_t i = 0; i < rank_to_pool.size(); ++i) rank_to_pool[i] = i;
  rng.shuffle(std::span<std::size_t>(rank_to_pool));

  w.job_index.reserve(config.num_jobs);
  w.jobs.reserve(config.num_jobs);
  if (config.popularity == Popularity::Zipf) {
    ZipfSampler zipf(w.pool.size(), config.zipf_alpha);
    for (std::size_t j = 0; j < config.num_jobs; ++j) {
      std::size_t rank = zipf.sample(rng);
      if (config.drift_period_jobs > 0) {
        // Rotate the rank assignment as the campaign evolves: the request
        // holding rank r at period p held rank r + p*rotate at period 0.
        const std::size_t period = j / config.drift_period_jobs;
        rank = (rank + period * config.drift_rotate) % w.pool.size();
      }
      w.job_index.push_back(rank_to_pool[rank]);
    }
  } else {
    for (std::size_t j = 0; j < config.num_jobs; ++j) {
      w.job_index.push_back(rank_to_pool[rng.index(w.pool.size())]);
    }
  }
  for (std::size_t idx : w.job_index) w.jobs.push_back(w.pool[idx]);
  return w;
}

}  // namespace fbc
