// Trace statistics: the workload characteristics that drive file-bundle
// caching behaviour (paper §5.1-§5.2), computed from any Trace.
//
// These are what you inspect before simulating a new (possibly real)
// trace: file-size and bundle-size distributions, request popularity skew,
// the file sharing degrees d(f) that bound the greedy's guarantee, and
// the footprint relative to candidate cache sizes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/stats.hpp"
#include "workload/trace.hpp"

namespace fbc {

/// Aggregated characteristics of a trace (see compute_trace_stats).
struct TraceStats {
  // -- files --------------------------------------------------------------
  std::size_t file_count = 0;
  Bytes total_file_bytes = 0;
  RunningStats file_bytes;  ///< distribution of file sizes

  // -- jobs / bundles -----------------------------------------------------
  std::size_t job_count = 0;
  RunningStats bundle_files;  ///< files per job
  RunningStats bundle_bytes;  ///< bytes per job

  // -- distinct requests and popularity ------------------------------------
  std::size_t distinct_requests = 0;
  /// Occurrences of the most popular request.
  std::uint64_t top_request_count = 0;
  /// Fraction of jobs contributed by the 10% most popular distinct
  /// requests (0.1 under uniform popularity, >> 0.1 under Zipf).
  double top_decile_job_share = 0.0;

  // -- file sharing (degrees) ----------------------------------------------
  /// d(f): number of distinct requests using each file; max is the `d` of
  /// Theorem 4.1.
  std::uint32_t max_file_degree = 0;
  RunningStats file_degree;  ///< over files used at least once
  /// Files never referenced by any job.
  std::size_t unused_files = 0;

  // -- footprint ------------------------------------------------------------
  /// Bytes of the distinct files referenced at least once.
  Bytes touched_bytes = 0;
};

/// Scans `trace` once and computes all statistics above.
[[nodiscard]] TraceStats compute_trace_stats(const Trace& trace);

/// Pretty-prints the statistics as an aligned report.
void print_trace_stats(std::ostream& os, const TraceStats& stats);

}  // namespace fbc
