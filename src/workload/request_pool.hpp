// Request (file-bundle) pool generation.
//
// Each pool entry is a distinct bundle drawn over the file catalog; the job
// stream then samples entries from this pool under a popularity
// distribution. Mirrors §5.1: "The set of files requested by each job was
// chosen randomly from the list of available files such that the total size
// of the files requested was smaller than the available cache size."
#pragma once

#include <cstddef>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/types.hpp"
#include "util/rng.hpp"

namespace fbc {

/// Parameters for bundle pool generation.
struct RequestPoolConfig {
  /// Number of distinct bundles to create.
  std::size_t num_requests = 200;
  /// Bundle size (file count) is uniform in [min_files, max_files].
  std::size_t min_files = 1;
  std::size_t max_files = 10;
  /// Upper bound on the total byte size of one bundle (typically the cache
  /// size, or a fraction of it so several bundles fit at once).
  Bytes max_bundle_bytes = 0;  ///< 0 means "no byte cap"
};

/// Generates a pool of distinct canonical requests over `catalog`.
///
/// Files are drawn uniformly without replacement; if a draw exceeds
/// `max_bundle_bytes`, files are dropped (largest first) until it fits.
/// Duplicate bundles are re-drawn (bounded retries), so the returned pool
/// may be slightly smaller than requested when the combinatorial space is
/// tiny. Throws std::invalid_argument on impossible configurations.
[[nodiscard]] std::vector<Request> generate_request_pool(
    const RequestPoolConfig& config, const FileCatalog& catalog, Rng& rng);

}  // namespace fbc
