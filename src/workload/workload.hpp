// End-to-end synthetic workload generation (paper §5.1-§5.2).
//
// A Workload bundles the three artifacts a simulation needs: the file
// catalog, the pool of distinct requests, and the job stream (a sequence of
// pool entries drawn under a popularity distribution). All generation is
// driven by a single 64-bit seed, so a WorkloadConfig fully determines the
// simulation input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/types.hpp"
#include "workload/file_pool.hpp"
#include "workload/request_pool.hpp"

namespace fbc {

/// Popularity distribution of the job stream over the request pool.
enum class Popularity {
  Uniform,  ///< every pool entry equally likely
  Zipf,     ///< P(rank i) ∝ 1/(i+1)^alpha, ranks assigned randomly
};

/// Returns "uniform" / "zipf".
[[nodiscard]] std::string to_string(Popularity p);

/// Full description of a synthetic workload.
struct WorkloadConfig {
  /// Master seed; all randomness derives from it.
  std::uint64_t seed = 42;

  /// Cache size this workload is sized against. File sizes and bundle caps
  /// are expressed relative to it, following the paper.
  Bytes cache_bytes = 10 * GiB;

  /// File pool: sizes uniform in [min_file_bytes, max_file_frac*cache].
  std::size_t num_files = 1000;
  Bytes min_file_bytes = 1 * MiB;
  double max_file_frac = 0.01;  ///< 1% (Fig. 6) ... 10% (Fig. 7)
  FileSizeModel file_size_model = FileSizeModel::Uniform;

  /// Request pool: distinct bundles of uniform [min,max] file count, each
  /// bundle capped at max_bundle_frac * cache bytes.
  std::size_t num_requests = 500;
  std::size_t min_bundle_files = 1;
  std::size_t max_bundle_files = 10;
  double max_bundle_frac = 1.0;

  /// Job stream.
  std::size_t num_jobs = 10000;
  Popularity popularity = Popularity::Uniform;
  double zipf_alpha = 1.0;

  /// Non-stationary popularity (extension): every `drift_period_jobs`
  /// jobs the rank-to-request assignment rotates by `drift_rotate`
  /// positions, so yesterday's hot analyses cool down and new ones heat
  /// up -- the access pattern of an evolving physics campaign. 0 keeps
  /// the distribution stationary (the paper's setting). Only meaningful
  /// under Zipf popularity (a rotated uniform distribution is uniform).
  std::size_t drift_period_jobs = 0;
  std::size_t drift_rotate = 1;
};

/// Generated workload artifacts.
struct Workload {
  FileCatalog catalog;
  std::vector<Request> pool;           ///< distinct requests
  std::vector<std::size_t> job_index;  ///< pool index per job
  std::vector<Request> jobs;           ///< materialized job stream

  /// Mean bundle byte size over the pool.
  [[nodiscard]] double mean_request_bytes() const;

  /// Cache size in "requests that fit", the paper's cache-size unit:
  /// cache_bytes / mean_request_bytes.
  [[nodiscard]] double requests_per_cache(Bytes cache_bytes) const;
};

/// Generates a workload from `config`. Deterministic in config.seed.
[[nodiscard]] Workload generate_workload(const WorkloadConfig& config);

}  // namespace fbc
