#include "workload/request_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/log.hpp"

namespace fbc {

std::vector<Request> generate_request_pool(const RequestPoolConfig& config,
                                           const FileCatalog& catalog,
                                           Rng& rng) {
  if (config.num_requests == 0)
    throw std::invalid_argument("generate_request_pool: num_requests == 0");
  if (config.min_files == 0 || config.min_files > config.max_files)
    throw std::invalid_argument(
        "generate_request_pool: need 1 <= min_files <= max_files");
  if (config.max_files > catalog.count())
    throw std::invalid_argument(
        "generate_request_pool: max_files exceeds catalog size");

  std::vector<Request> pool;
  pool.reserve(config.num_requests);
  std::unordered_set<Request, RequestHash> seen;
  seen.reserve(config.num_requests * 2);

  // Bounded retries: in tiny combinatorial spaces distinct bundles may run
  // out; we then return fewer than requested rather than loop forever.
  const std::size_t max_attempts = config.num_requests * 50;
  std::size_t attempts = 0;

  while (pool.size() < config.num_requests && attempts < max_attempts) {
    ++attempts;
    const std::size_t want = static_cast<std::size_t>(
        rng.uniform_u64(config.min_files, config.max_files));
    std::vector<std::size_t> picked =
        rng.sample_without_replacement(catalog.count(), want);
    std::vector<FileId> files;
    files.reserve(picked.size());
    for (std::size_t idx : picked) files.push_back(static_cast<FileId>(idx));

    if (config.max_bundle_bytes > 0) {
      // Trim largest-first until the bundle fits under the byte cap while
      // keeping at least one file (single files are capped by the file
      // pool's max size, which callers keep below the cache size).
      std::sort(files.begin(), files.end(), [&](FileId a, FileId b) {
        return catalog.size_of(a) < catalog.size_of(b);
      });
      Bytes total = catalog.bundle_bytes(files);
      while (files.size() > 1 && total > config.max_bundle_bytes) {
        total -= catalog.size_of(files.back());
        files.pop_back();
      }
      if (total > config.max_bundle_bytes) continue;  // lone file too big
    }

    Request request(std::move(files));
    if (request.empty()) continue;
    if (seen.insert(request).second) {
      pool.push_back(std::move(request));
    }
  }

  if (pool.size() < config.num_requests) {
    FBC_LOG(Warn) << "request pool exhausted distinct bundles: "
                  << pool.size() << "/" << config.num_requests;
  }
  if (pool.empty())
    throw std::runtime_error(
        "generate_request_pool: could not generate any feasible bundle");
  return pool;
}

}  // namespace fbc
