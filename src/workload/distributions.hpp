// Discrete popularity distributions for workload synthesis.
//
// The paper evaluates the two extremes (§5.2): a uniform distribution over
// the request pool and a Zipf distribution where the i-th most popular
// request is drawn with probability proportional to 1/i^alpha (alpha = 1 in
// the paper). Zipf sampling uses Walker's alias method: O(n) setup, O(1)
// per sample, exact probabilities.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace fbc {

/// O(1) sampling from an arbitrary discrete distribution via Walker's
/// alias method.
class AliasSampler {
 public:
  /// Builds the alias table from non-negative `weights` (need not be
  /// normalized; at least one must be positive, else throws).
  explicit AliasSampler(std::span<const double> weights);

  /// Draws an index with probability weight[i] / sum(weights).
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  /// Number of outcomes.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Exact normalized probability of outcome `i`.
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return normalized_[i];
  }

 private:
  std::vector<double> prob_;         // acceptance threshold per bucket
  std::vector<std::size_t> alias_;   // fallback outcome per bucket
  std::vector<double> normalized_;   // normalized input weights
};

/// Zipf(alpha) distribution over ranks 0..n-1 (rank 0 most popular):
/// P(rank i) ∝ 1 / (i+1)^alpha.
class ZipfSampler {
 public:
  /// Precondition: n > 0, alpha >= 0 (alpha = 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double alpha = 1.0);

  /// Draws a rank.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept {
    return alias_.sample(rng);
  }

  [[nodiscard]] std::size_t size() const noexcept { return alias_.size(); }

  /// Exact probability of rank `i`.
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return alias_.probability(i);
  }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  AliasSampler alias_;
};

/// Uniform distribution over 0..n-1, matching the sampler interface.
class UniformIndexSampler {
 public:
  /// Precondition: n > 0.
  explicit UniformIndexSampler(std::size_t n);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept {
    return rng.index(n_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] double probability(std::size_t) const noexcept {
    return 1.0 / static_cast<double>(n_);
  }

 private:
  std::size_t n_;
};

}  // namespace fbc
