// Domain-specific workload generators modeled on the three motivating
// applications in the paper's introduction (§1.1):
//
//  * HENP event analysis  -- collision events vertically partitioned into
//    one file per attribute per experimental run; physicists combine
//    several attributes of one run per analysis job.
//  * Climate modeling     -- one file per (variable, time-chunk); analysis
//    and visualization jobs read a group of physically related variables
//    (e.g. the three wind components) across a contiguous chunk range.
//  * Bit-sliced indexes   -- one compressed bitmap file per (attribute,
//    bin); a range query reads a contiguous run of bins for each attribute
//    it constrains, and all those bitmaps must be resident simultaneously.
//
// Unlike the random bundles of generate_workload(), these produce
// *structured* bundles (grouped / contiguous / overlapping), which is where
// bundle-aware replacement shines over per-file popularity.
#pragma once

#include <cstdint>

#include "workload/workload.hpp"

namespace fbc {

/// High Energy & Nuclear Physics analysis workload.
struct HenpConfig {
  std::uint64_t seed = 42;
  Bytes cache_bytes = 10 * GiB;
  std::size_t num_runs = 24;         ///< experimental runs
  std::size_t num_attributes = 40;   ///< attributes per event (energy, ...)
  /// Attribute-file size range (values for one attribute across all events
  /// of one run).
  Bytes min_attr_file_bytes = 4 * MiB;
  Bytes max_attr_file_bytes = 64 * MiB;
  /// Number of distinct analysis templates (attribute combinations that
  /// physicists actually run, e.g. "energy x momentum x multiplicity").
  std::size_t num_templates = 12;
  std::size_t min_template_attrs = 2;
  std::size_t max_template_attrs = 6;
  std::size_t num_jobs = 10000;
  /// Jobs pick (run, template) pairs Zipf-distributed: recent runs and
  /// popular cuts dominate.
  double zipf_alpha = 1.0;
};

/// Climate model post-processing workload.
struct ClimateConfig {
  std::uint64_t seed = 42;
  Bytes cache_bytes = 10 * GiB;
  std::size_t num_variables = 16;   ///< temperature, humidity, u, v, w, ...
  std::size_t num_chunks = 30;      ///< time-partition chunks
  Bytes min_chunk_file_bytes = 8 * MiB;
  Bytes max_chunk_file_bytes = 32 * MiB;
  /// Variable groups read together (wind = {u,v,w}, radiation = {...}).
  std::size_t num_groups = 8;
  std::size_t min_group_vars = 1;
  std::size_t max_group_vars = 4;
  /// Chunk-range width per job, uniform in [1, max_range_chunks].
  std::size_t max_range_chunks = 4;
  std::size_t num_jobs = 10000;
  double zipf_alpha = 0.8;  ///< over (group, range-start) query pool
};

/// Bit-sliced bitmap-index query workload.
struct BitmapConfig {
  std::uint64_t seed = 42;
  Bytes cache_bytes = 4 * GiB;
  std::size_t num_attributes = 20;
  std::size_t bins_per_attribute = 25;
  /// Compressed bitmap file sizes (skewed: edge bins compress well).
  Bytes min_bitmap_bytes = 1 * MiB;
  Bytes max_bitmap_bytes = 24 * MiB;
  /// Each query constrains 1..max_query_attrs attributes with a contiguous
  /// bin range of width 1..max_range_bins.
  std::size_t max_query_attrs = 3;
  std::size_t max_range_bins = 6;
  std::size_t num_query_pool = 400;  ///< distinct queries
  std::size_t num_jobs = 10000;
  double zipf_alpha = 1.0;
};

/// Builds the HENP workload described above.
[[nodiscard]] Workload generate_henp_workload(const HenpConfig& config);

/// Builds the climate post-processing workload.
[[nodiscard]] Workload generate_climate_workload(const ClimateConfig& config);

/// Builds the bitmap-index query workload.
[[nodiscard]] Workload generate_bitmap_workload(const BitmapConfig& config);

}  // namespace fbc
