#include "workload/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "workload/distributions.hpp"

namespace fbc {
namespace {

/// Samples the job stream over `pool` with Zipf(alpha) popularity assigned
/// to a random permutation of pool indices, and materializes the jobs.
void fill_jobs(Workload& w, std::size_t num_jobs, double alpha, Rng& rng) {
  std::vector<std::size_t> rank_to_pool(w.pool.size());
  for (std::size_t i = 0; i < rank_to_pool.size(); ++i) rank_to_pool[i] = i;
  rng.shuffle(std::span<std::size_t>(rank_to_pool));
  ZipfSampler zipf(w.pool.size(), alpha);
  w.job_index.reserve(num_jobs);
  w.jobs.reserve(num_jobs);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    w.job_index.push_back(rank_to_pool[zipf.sample(rng)]);
  }
  for (std::size_t idx : w.job_index) w.jobs.push_back(w.pool[idx]);
}

/// Deduplicates pool entries, preserving first occurrence order.
void dedup_pool(std::vector<Request>& pool) {
  std::unordered_set<Request, RequestHash> seen;
  std::vector<Request> unique;
  unique.reserve(pool.size());
  for (Request& r : pool) {
    if (seen.insert(r).second) unique.push_back(std::move(r));
  }
  pool = std::move(unique);
}

}  // namespace

Workload generate_henp_workload(const HenpConfig& config) {
  if (config.num_runs == 0 || config.num_attributes == 0)
    throw std::invalid_argument("henp: need runs and attributes");
  if (config.min_template_attrs == 0 ||
      config.min_template_attrs > config.max_template_attrs ||
      config.max_template_attrs > config.num_attributes)
    throw std::invalid_argument("henp: bad template attribute bounds");

  Rng rng(config.seed);
  Workload w;

  // File layout: file(run, attr) = run * num_attributes + attr. Each run
  // has its own event count, so all attribute files of a run scale
  // together (larger runs -> larger files across the board).
  std::vector<double> run_scale(config.num_runs);
  for (double& s : run_scale) s = rng.uniform_double(0.5, 1.5);
  for (std::size_t run = 0; run < config.num_runs; ++run) {
    for (std::size_t attr = 0; attr < config.num_attributes; ++attr) {
      const Bytes base = rng.uniform_u64(config.min_attr_file_bytes,
                                         config.max_attr_file_bytes);
      const Bytes size = std::max<Bytes>(
          1, static_cast<Bytes>(static_cast<double>(base) * run_scale[run]));
      w.catalog.add_file(size);
    }
  }

  // Analysis templates: the attribute combinations the collaboration
  // actually queries.
  std::vector<std::vector<std::size_t>> templates;
  templates.reserve(config.num_templates);
  for (std::size_t t = 0; t < config.num_templates; ++t) {
    const std::size_t count = static_cast<std::size_t>(rng.uniform_u64(
        config.min_template_attrs, config.max_template_attrs));
    templates.push_back(
        rng.sample_without_replacement(config.num_attributes, count));
  }

  // Pool: one request per (run, template).
  for (std::size_t run = 0; run < config.num_runs; ++run) {
    for (const auto& tmpl : templates) {
      std::vector<FileId> files;
      files.reserve(tmpl.size());
      for (std::size_t attr : tmpl) {
        files.push_back(
            static_cast<FileId>(run * config.num_attributes + attr));
      }
      w.pool.emplace_back(std::move(files));
    }
  }
  dedup_pool(w.pool);
  fill_jobs(w, config.num_jobs, config.zipf_alpha, rng);
  return w;
}

Workload generate_climate_workload(const ClimateConfig& config) {
  if (config.num_variables == 0 || config.num_chunks == 0)
    throw std::invalid_argument("climate: need variables and chunks");
  if (config.min_group_vars == 0 ||
      config.min_group_vars > config.max_group_vars ||
      config.max_group_vars > config.num_variables)
    throw std::invalid_argument("climate: bad group bounds");
  if (config.max_range_chunks == 0 ||
      config.max_range_chunks > config.num_chunks)
    throw std::invalid_argument("climate: bad range bounds");

  Rng rng(config.seed);
  Workload w;

  // File layout: file(var, chunk) = var * num_chunks + chunk.
  for (std::size_t var = 0; var < config.num_variables; ++var) {
    for (std::size_t chunk = 0; chunk < config.num_chunks; ++chunk) {
      w.catalog.add_file(rng.uniform_u64(config.min_chunk_file_bytes,
                                         config.max_chunk_file_bytes));
    }
  }

  // Variable groups read together (e.g. the wind components).
  std::vector<std::vector<std::size_t>> groups;
  groups.reserve(config.num_groups);
  for (std::size_t g = 0; g < config.num_groups; ++g) {
    const std::size_t count = static_cast<std::size_t>(
        rng.uniform_u64(config.min_group_vars, config.max_group_vars));
    groups.push_back(
        rng.sample_without_replacement(config.num_variables, count));
  }

  // Pool: one request per (group, range-start, range-width) that we expect
  // analysts to run; enumerate group x start with a random width each.
  for (const auto& group : groups) {
    for (std::size_t start = 0; start < config.num_chunks; ++start) {
      const std::size_t width = static_cast<std::size_t>(
          rng.uniform_u64(1, config.max_range_chunks));
      const std::size_t end = std::min(start + width, config.num_chunks);
      std::vector<FileId> files;
      files.reserve(group.size() * (end - start));
      for (std::size_t var : group) {
        for (std::size_t chunk = start; chunk < end; ++chunk) {
          files.push_back(
              static_cast<FileId>(var * config.num_chunks + chunk));
        }
      }
      w.pool.emplace_back(std::move(files));
    }
  }
  dedup_pool(w.pool);
  fill_jobs(w, config.num_jobs, config.zipf_alpha, rng);
  return w;
}

Workload generate_bitmap_workload(const BitmapConfig& config) {
  if (config.num_attributes == 0 || config.bins_per_attribute == 0)
    throw std::invalid_argument("bitmap: need attributes and bins");
  if (config.max_query_attrs == 0 ||
      config.max_query_attrs > config.num_attributes)
    throw std::invalid_argument("bitmap: bad query attribute bound");
  if (config.max_range_bins == 0 ||
      config.max_range_bins > config.bins_per_attribute)
    throw std::invalid_argument("bitmap: bad bin range bound");

  Rng rng(config.seed);
  Workload w;

  // File layout: file(attr, bin) = attr * bins + bin. Compressed bitmap
  // sizes are skewed: bins near the middle of a value distribution are
  // denser, so they compress worse; model with a triangular profile.
  for (std::size_t attr = 0; attr < config.num_attributes; ++attr) {
    for (std::size_t bin = 0; bin < config.bins_per_attribute; ++bin) {
      const double center = static_cast<double>(config.bins_per_attribute - 1) / 2.0;
      const double dist =
          std::abs(static_cast<double>(bin) - center) / (center > 0 ? center : 1.0);
      const double density = 1.0 - 0.7 * dist;  // 1 at center, 0.3 at edges
      const Bytes base =
          rng.uniform_u64(config.min_bitmap_bytes, config.max_bitmap_bytes);
      const Bytes size =
          std::max<Bytes>(1, static_cast<Bytes>(static_cast<double>(base) * density));
      w.catalog.add_file(size);
    }
  }

  // Query pool: each query picks 1..max_query_attrs attributes and a
  // contiguous bin run on each; the bundle is the union of those bitmaps.
  std::unordered_set<Request, RequestHash> seen;
  const std::size_t max_attempts = config.num_query_pool * 50;
  std::size_t attempts = 0;
  while (w.pool.size() < config.num_query_pool && attempts < max_attempts) {
    ++attempts;
    const std::size_t nattrs =
        static_cast<std::size_t>(rng.uniform_u64(1, config.max_query_attrs));
    std::vector<std::size_t> attrs =
        rng.sample_without_replacement(config.num_attributes, nattrs);
    std::vector<FileId> files;
    for (std::size_t attr : attrs) {
      const std::size_t width =
          static_cast<std::size_t>(rng.uniform_u64(1, config.max_range_bins));
      const std::size_t start = static_cast<std::size_t>(
          rng.uniform_u64(0, config.bins_per_attribute - width));
      for (std::size_t bin = start; bin < start + width; ++bin) {
        files.push_back(
            static_cast<FileId>(attr * config.bins_per_attribute + bin));
      }
    }
    Request query(std::move(files));
    if (seen.insert(query).second) w.pool.push_back(std::move(query));
  }
  if (w.pool.empty())
    throw std::runtime_error("bitmap: could not generate any query");
  fill_jobs(w, config.num_jobs, config.zipf_alpha, rng);
  return w;
}

}  // namespace fbc
