// Brute-force reference implementation of the BundleOPTgen oracle.
//
// Recomputes every per-request quantity (last occurrences, degrees, the
// last serviced job) by scanning the full job history backwards -- O(n*m)
// per decision -- and keeps full-length occupancy vectors instead of the
// incremental oracle's ring buffer. Window clipping is applied with the
// same arithmetic, so on any trace the reference must agree with
// core/optgen *field for field*: every verdict, every statistic (except
// the implementation-specific `slices_scanned` cost counter) and the
// occupancy of every in-window quantum. `fbcfuzz --optgen-diff`
// differential-tests the two, mirroring how `--engine-diff` pinned the
// incremental selection engine against the reference selector.
#pragma once

#include <span>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/types.hpp"
#include "core/optgen.hpp"

namespace fbc::testing {

/// Full replay output of the reference oracle.
struct OptgenReferenceResult {
  /// One verdict per job, in arrival order.
  std::vector<OptgenVerdict> verdicts;
  /// Final statistics; `slices_scanned` counts the reference's own
  /// history-scan steps (not comparable to the incremental oracle's).
  OptgenStats stats;
  /// Full-length occupancy: forced[u] / committed[u] for quantum u.
  std::vector<Bytes> forced;
  std::vector<Bytes> committed;
};

/// Replays `jobs` through the brute-force oracle.
[[nodiscard]] OptgenReferenceResult reference_optgen(
    const FileCatalog& catalog, std::span<const Request> jobs,
    const OptgenConfig& config);

}  // namespace fbc::testing
