#include "testing/sched_sim.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "grid/mss.hpp"

namespace fbc::testing {
namespace {

using service::AcquireResult;
using service::AcquireStatus;
using service::BundleServer;
using service::ServiceConfig;

/// Spins until `ready` returns true; throws after ~10s so a harness bug
/// (an acquire that neither queues nor returns) fails loudly instead of
/// hanging the test binary.
template <typename Pred>
void await(const Pred& ready, const char* what) {
  for (int i = 0; i < 100000; ++i) {
    if (ready()) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  throw std::runtime_error(std::string("sched_sim: stalled waiting for ") +
                           what);
}

}  // namespace

SchedInstance generate_sched_instance(const SchedGenConfig& config, Rng& rng) {
  SchedInstance instance;
  const std::size_t files =
      rng.uniform_u64(config.min_files, config.max_files);
  std::vector<Bytes> sizes(files);
  Bytes total = 0;
  for (Bytes& s : sizes) {
    s = rng.uniform_u64(config.min_file_bytes, config.max_file_bytes);
    total += s;
  }
  instance.catalog = FileCatalog(std::move(sizes));

  const std::size_t clients = 1 + rng.index(config.max_clients);
  instance.wave = 1 + rng.index(config.max_wave);
  const std::size_t ops = rng.uniform_u64(config.min_ops, config.max_ops);
  Bytes largest = 0;
  const std::size_t hot = std::min(config.hot_files, files);
  for (std::size_t i = 0; i < ops; ++i) {
    SchedOp op;
    op.client = static_cast<std::uint32_t>(rng.index(clients));
    op.release_oldest = rng.bernoulli(config.release_prob);
    const std::size_t picks = 1 + rng.index(config.max_bundle_files);
    std::vector<FileId> bundle;
    for (std::size_t p = 0; p < picks; ++p) {
      const bool from_hot = hot > 0 && rng.bernoulli(config.hot_prob);
      bundle.push_back(static_cast<FileId>(
          from_hot ? rng.index(hot) : rng.index(files)));
    }
    op.request = Request(std::move(bundle));  // canonicalizes (sorted/unique)
    largest = std::max(largest,
                       instance.catalog.bundle_bytes(op.request.files));
    instance.ops.push_back(std::move(op));
  }
  // Big enough that every wave resolves, small enough that replays evict.
  const auto frac = static_cast<Bytes>(
      static_cast<double>(total) * rng.uniform_double(0.3, 0.7));
  instance.cache_bytes =
      std::max({largest, frac, feasible_cache_floor(instance)});
  return instance;
}

Bytes feasible_cache_floor(const SchedInstance& instance) {
  // Exact simulation of the replay's pin/release order. The sufficient
  // fit condition is pinned_bytes + bundle_bytes <= capacity: everything
  // resident but unpinned (and not part of the incoming bundle) is
  // evictable, so free + evictable >= capacity - pinned - bundle, which
  // covers the bundle's missing bytes.
  std::vector<std::uint32_t> pins(instance.catalog.count(), 0);
  Bytes pinned = 0;
  const auto pin = [&](const Request& r) {
    for (FileId id : r.files)
      if (pins[id]++ == 0) pinned += instance.catalog.size_of(id);
  };
  const auto unpin = [&](const Request& r) {
    for (FileId id : r.files)
      if (--pins[id] == 0) pinned -= instance.catalog.size_of(id);
  };
  std::vector<std::deque<const Request*>> held;
  for (const SchedOp& op : instance.ops)
    if (op.client >= held.size()) held.resize(op.client + 1);
  Bytes floor = 0;
  for (std::size_t start = 0; start < instance.ops.size();
       start += instance.wave) {
    const std::size_t end =
        std::min(instance.ops.size(), start + instance.wave);
    // Releases run during the paused enqueue phase, before any of the
    // wave's admissions; admissions then drain in op (queue) order.
    for (std::size_t i = start; i < end; ++i) {
      const SchedOp& op = instance.ops[i];
      if (op.release_oldest && !held[op.client].empty()) {
        unpin(*held[op.client].front());
        held[op.client].pop_front();
      }
    }
    for (std::size_t i = start; i < end; ++i) {
      const SchedOp& op = instance.ops[i];
      floor = std::max(
          floor, pinned + instance.catalog.bundle_bytes(op.request.files));
      pin(op.request);
      held[op.client].push_back(&op.request);
    }
  }
  return floor;
}

std::string to_string(const SchedOutcome& outcome) {
  std::ostringstream out;
  for (std::size_t i = 0; i < outcome.grants.size(); ++i) {
    const GrantRecord& g = outcome.grants[i];
    out << "op " << i << ": client " << g.client << " status "
        << static_cast<int>(g.status) << " hit " << static_cast<int>(g.hit)
        << "\n";
  }
  out << "resident:";
  for (FileId id : outcome.resident) out << ' ' << id;
  out << "\nrequests=" << outcome.requests << " hits=" << outcome.request_hits
      << " evictions=" << outcome.evictions
      << " rejected_full=" << outcome.rejected_full << "\n";
  return out.str();
}

SchedOutcome run_schedule(const SchedInstance& instance,
                          ServiceConfig config) {
  config.cache_bytes = instance.cache_bytes;
  config.order = service::AdmitOrder::Fifo;  // queue order == arrival order
  config.time_scale = 0.0;                   // virtual staging time only
  MassStorageSystem mss(default_tiers(), instance.catalog);
  BundleServer server(config, mss);

  SchedOutcome outcome;
  outcome.grants.resize(instance.ops.size());
  std::vector<std::deque<service::LeaseId>> held(
      1 + (instance.ops.empty()
               ? 0
               : std::max_element(instance.ops.begin(), instance.ops.end(),
                                  [](const SchedOp& a, const SchedOp& b) {
                                    return a.client < b.client;
                                  })
                     ->client));

  std::vector<AcquireResult> results(instance.ops.size());
  std::vector<std::exception_ptr> errors(instance.ops.size());
  for (std::size_t start = 0; start < instance.ops.size();
       start += instance.wave) {
    const std::size_t end =
        std::min(instance.ops.size(), start + instance.wave);
    server.set_admission_paused(true);
    std::vector<std::thread> threads;
    std::vector<std::atomic<bool>> done(end - start);
    std::uint64_t queued = 0;
    for (std::size_t i = start; i < end; ++i) {
      const SchedOp& op = instance.ops[i];
      if (op.release_oldest && !held[op.client].empty()) {
        server.release(held[op.client].front());
        held[op.client].pop_front();
      }
      std::atomic<bool>& flag = done[i - start];
      threads.emplace_back([&server, &op, &results, &errors, &flag, i] {
        // An exception out of acquire (e.g. EngineDivergence from a
        // shadow-diff policy, thrown by whichever waiter ran the drain
        // pass) must not std::terminate the binary or strand the rest of
        // the wave in the queue: capture it and close the server so every
        // other waiter returns Closed, then rethrow after the join.
        try {
          results[i] = server.acquire(op.request);
        } catch (...) {
          errors[i] = std::current_exception();
          server.close();
        }
        flag.store(true, std::memory_order_release);
      });
      // Arrival order is program order: the next acquire is not issued
      // until this one is visibly queued -- or already finished (it was
      // rejected before queueing, or admission raced the pause and
      // granted it; either way its effect on the queue is settled).
      const std::uint64_t target = queued + 1;
      await(
          [&] {
            return server.stats().queue_depth >= target ||
                   done[i - start].load(std::memory_order_acquire);
          },
          "enqueue");
      if (server.stats().queue_depth >= target) ++queued;
    }
    server.set_admission_paused(false);
    for (std::thread& t : threads) t.join();
    for (std::size_t i = start; i < end; ++i)
      if (errors[i]) std::rethrow_exception(errors[i]);
    for (std::size_t i = start; i < end; ++i) {
      const SchedOp& op = instance.ops[i];
      GrantRecord& g = outcome.grants[i];
      g.client = op.client;
      g.status = static_cast<std::uint8_t>(results[i].status);
      g.hit = results[i].request_hit ? 1 : 0;
      if (results[i].status == AcquireStatus::Ok)
        held[op.client].push_back(results[i].lease);
    }
  }

  for (std::deque<service::LeaseId>& leases : held)
    for (service::LeaseId lease : leases) server.release(lease);

  const std::vector<std::string> violations = server.audit();
  if (!violations.empty())
    throw std::runtime_error("sched_sim: audit failed after replay: " +
                             violations.front());

  const service::ServiceStats stats = server.stats();
  outcome.resident = server.resident_files();
  outcome.requests = stats.requests;
  outcome.request_hits = stats.request_hits;
  outcome.evictions = stats.evictions;
  outcome.rejected_full = stats.rejected_full;
  return outcome;
}

std::optional<std::string> check_batch_equivalence(
    const SchedInstance& instance, std::size_t batch,
    const ServiceConfig& config) {
  ServiceConfig serial = config;
  serial.admission_batch = 1;
  ServiceConfig batched = config;
  batched.admission_batch = batch;
  const SchedOutcome a = run_schedule(instance, serial);
  const SchedOutcome b = run_schedule(instance, batched);
  if (a == b) return std::nullopt;
  std::ostringstream out;
  out << "batched (admission_batch=" << batch
      << ") diverged from serial replay\n--- serial ---\n"
      << to_string(a) << "--- batched ---\n"
      << to_string(b);
  return out.str();
}

SchedInstance shrink_sched_instance(SchedInstance instance,
                                    const SchedPredicate& pred) {
  if (!pred(instance))
    throw std::invalid_argument(
        "shrink_sched_instance: predicate is false on the input");
  // Pass 1: drop op chunks, halves down to singles (delta-debugging).
  for (std::size_t chunk = std::max<std::size_t>(1, instance.ops.size() / 2);
       chunk >= 1; chunk /= 2) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t start = 0; start + chunk <= instance.ops.size();) {
        SchedInstance candidate = instance;
        candidate.ops.erase(
            candidate.ops.begin() + static_cast<std::ptrdiff_t>(start),
            candidate.ops.begin() + static_cast<std::ptrdiff_t>(start + chunk));
        // Dropping an op can drop a *release*, leaving a later admission
        // infeasible at the stored capacity (its wave would stall until
        // the admission timeout). Keep candidates feasible by raising the
        // capacity to the new floor when needed.
        candidate.cache_bytes =
            std::max(candidate.cache_bytes, feasible_cache_floor(candidate));
        if (!candidate.ops.empty() && pred(candidate)) {
          instance = std::move(candidate);
          progress = true;
        } else {
          start += chunk;
        }
      }
    }
    if (chunk == 1) break;
  }
  // Pass 2: drop individual files from bundles.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < instance.ops.size(); ++i) {
      for (std::size_t f = 0; f < instance.ops[i].request.files.size();) {
        if (instance.ops[i].request.files.size() == 1) break;
        SchedInstance candidate = instance;
        candidate.ops[i].request.files.erase(
            candidate.ops[i].request.files.begin() +
            static_cast<std::ptrdiff_t>(f));
        if (pred(candidate)) {
          instance = std::move(candidate);
          progress = true;
        } else {
          ++f;
        }
      }
    }
  }
  return instance;
}

Trace sched_instance_to_trace(const SchedInstance& instance) {
  Trace trace;
  trace.catalog = instance.catalog;
  std::string clients;
  std::string releases;
  for (const SchedOp& op : instance.ops) {
    trace.jobs.push_back(op.request);
    if (!clients.empty()) clients += ',';
    clients += std::to_string(op.client);
    if (!releases.empty()) releases += ',';
    releases += op.release_oldest ? '1' : '0';
  }
  trace.set_meta("kind", "serve");
  trace.set_meta("cache_bytes", std::to_string(instance.cache_bytes));
  trace.set_meta("wave", std::to_string(instance.wave));
  trace.set_meta("clients", clients);
  trace.set_meta("releases", releases);
  return trace;
}

SchedInstance sched_instance_from_trace(const Trace& trace) {
  const std::string* cache_bytes = trace.meta_value("cache_bytes");
  const std::string* wave = trace.meta_value("wave");
  const std::string* clients = trace.meta_value("clients");
  const std::string* releases = trace.meta_value("releases");
  if (cache_bytes == nullptr || wave == nullptr || clients == nullptr ||
      releases == nullptr)
    throw std::runtime_error(
        "serve reproducer needs cache_bytes/wave/clients/releases meta");
  const auto split = [](const std::string& csv) {
    std::vector<std::string> out;
    std::istringstream stream(csv);
    std::string item;
    while (std::getline(stream, item, ',')) out.push_back(item);
    return out;
  };
  const std::vector<std::string> client_items = split(*clients);
  const std::vector<std::string> release_items = split(*releases);
  if (client_items.size() != trace.jobs.size() ||
      release_items.size() != trace.jobs.size())
    throw std::runtime_error(
        "serve reproducer clients/releases do not match the job count");
  SchedInstance instance;
  instance.catalog = trace.catalog;
  instance.cache_bytes = std::stoull(*cache_bytes);
  instance.wave = std::max<std::size_t>(1, std::stoull(*wave));
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    SchedOp op;
    op.client = static_cast<std::uint32_t>(std::stoul(client_items[i]));
    op.release_oldest = release_items[i] == "1";
    op.request = trace.jobs[i];
    instance.ops.push_back(std::move(op));
  }
  return instance;
}

}  // namespace fbc::testing
