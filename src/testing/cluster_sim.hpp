// Deterministic schedule replay for a sharded serving cluster.
//
// Extends sched_sim to a ClusterRouter over N in-process BundleServer
// shards. The same SchedInstance drives two replays:
//
//  - serial-router: a single thread issues the ops in schedule order
//    through ClusterRouter::acquire/release. Fully deterministic for any
//    placement, including scatter/gather -- sub-acquires of one op run
//    to completion before the next op starts.
//
//  - concurrent-router: the sched_sim wave protocol generalized to N
//    shards. Admission is paused on *every* shard, the wave's releases
//    run first, one thread per acquire is spawned (the driver waits for
//    each to be visibly queued somewhere -- summed queue depth -- or
//    already finished), then all shards unpause and the wave drains.
//
// With wave == 1 the concurrent replay degenerates to sequential arrival
// and the two outcomes must be bit-identical (strict oracle: statuses,
// hit flags, per-shard residency, counters). With wave > 1 per-shard
// admission order within a wave is scheduler-dependent by design, so the
// oracle relaxes to what must still hold under any interleaving: the
// per-wave multiset of (client, status), the total grant count, both
// replays' per-shard audits, and no scatter lease left behind.
#pragma once

#include <optional>
#include <string>

#include "cluster/config.hpp"
#include "testing/sched_sim.hpp"

namespace fbc::testing {

/// One planned shard fault, applied at a wave boundary: before any op of
/// wave `wave` (0-based, ops [wave * instance.wave, ...)) is issued, the
/// shard's FaultInjectionShard wrapper starts (kill) or stops (revive)
/// throwing NetError. A revive also probes the shard through the router,
/// so recovery -- and the deferred-release flush it triggers -- lands at
/// a deterministic point in both replays.
struct FaultEvent {
  std::size_t wave = 0;
  std::uint32_t shard = 0;
  bool kill = true;  ///< false = revive + probe
};

/// The kill/revive schedule a replay injects. With probe_ms forced to 0
/// (see run_cluster_schedule) routing stays a pure function of the
/// request and the wave's killed set, so a faulted replay is as
/// deterministic as a clean one.
struct FaultPlan {
  std::vector<FaultEvent> events;
  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// What the cluster equivalence oracle compares between replays.
struct ClusterOutcome {
  std::vector<GrantRecord> grants;  ///< one per op, schedule order
  std::vector<std::vector<FileId>> resident;  ///< per shard, sorted
  std::uint64_t requests = 0;       ///< summed shard stats
  std::uint64_t request_hits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t single_acquires = 0;   ///< grid.acquire.single
  std::uint64_t scatter_acquires = 0;  ///< grid.acquire.scatter
  std::uint64_t rollbacks = 0;         ///< grid.acquire.rollback
  std::uint64_t rerouted = 0;          ///< grid.acquire.rerouted
  std::uint64_t shard_down_events = 0;   ///< grid.shard.down
  std::uint64_t shard_recoveries = 0;    ///< grid.shard.recovered

  bool operator==(const ClusterOutcome&) const = default;
};

/// Renders an outcome for mismatch diagnostics.
[[nodiscard]] std::string to_string(const ClusterOutcome& outcome);

/// Capacity floor under which a *concurrent* cluster replay could stall:
/// within a wave, per-shard admission order is interleaving-dependent, so
/// feasibility must hold for any order -- pinned bytes at wave start plus
/// the whole wave's bundle bytes must fit. (Stronger than sched_sim's
/// feasible_cache_floor, which assumes op-order admission; it is an upper
/// bound for every shard since a shard sees at most the full bundles.)
[[nodiscard]] Bytes cluster_feasible_floor(const SchedInstance& instance);

/// Replays `instance` against a ClusterRouter over `cluster.shards` real
/// BundleServers (each with max(instance.cache_bytes,
/// cluster_feasible_floor) capacity; order forced to Fifo, time_scale 0,
/// probe_ms forced to 0 so fault routing is interleaving-independent).
/// Every shard is wrapped in a FaultInjectionShard and `faults` is
/// applied at wave boundaries; at the end all shards are revived and
/// probed, leftover leases are released, and any shard audit violation,
/// surviving scatter lease, or undelivered deferred release throws
/// std::runtime_error -- a kill/revive wave must not lose a lease.
[[nodiscard]] ClusterOutcome run_cluster_schedule(
    const SchedInstance& instance, service::ServiceConfig config,
    const cluster::ClusterConfig& cluster, bool concurrent,
    const FaultPlan& faults = {});

/// Runs the serial-router and concurrent-router replays and describes the
/// first divergence the applicable oracle (strict for wave == 1, relaxed
/// otherwise -- see file comment) finds, or std::nullopt when equivalent.
[[nodiscard]] std::optional<std::string> check_cluster_equivalence(
    const SchedInstance& instance, const service::ServiceConfig& config,
    const cluster::ClusterConfig& cluster, const FaultPlan& faults = {});

/// Serializes a cluster schedule as a v3 trace (kind=cluster): the
/// sched_sim trace plus the cluster topology meta entries and, when the
/// fault plan is non-empty, a `faults` entry ("wave:shard:kill;..." --
/// one clause per event) plus the health knobs that shape its metrics.
[[nodiscard]] Trace cluster_instance_to_trace(
    const SchedInstance& instance, const cluster::ClusterConfig& cluster,
    const FaultPlan& faults = {});

/// Everything a kind=cluster trace round-trips.
struct ClusterTraceParts {
  SchedInstance instance;
  cluster::ClusterConfig cluster;
  FaultPlan faults;
};

/// Parses a trace produced by cluster_instance_to_trace(). Traces from
/// before fault injection (no `faults` meta) parse to an empty plan.
[[nodiscard]] ClusterTraceParts cluster_instance_from_trace(
    const Trace& trace);

}  // namespace fbc::testing
