#include "testing/shrink.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace fbc::testing {
namespace {

/// Upper bound on full shrink rounds; each round only repeats while it
/// makes progress, so this is a runaway guard, not a tuning knob.
constexpr std::size_t kMaxRounds = 64;

/// Rebuilds a catalog from an edited size table.
FileCatalog catalog_with_sizes(std::vector<Bytes> sizes) {
  return FileCatalog(std::move(sizes));
}

// Accessor shims so halve_sizes_pass works on both instance kinds.
FileCatalog& candidate_catalog(SelectInstance& inst) { return inst.catalog; }
FileCatalog& candidate_catalog(SimInstance& inst) {
  return inst.trace.catalog;
}

/// Tries halving each file size (floor, min 1) while `pred` keeps failing.
template <typename Instance, typename Pred>
bool halve_sizes_pass(Instance& inst, FileCatalog& catalog, const Pred& pred) {
  bool any = false;
  for (std::size_t f = 0; f < catalog.count(); ++f) {
    const Bytes size = catalog.size_of(static_cast<FileId>(f));
    if (size <= 1) continue;
    std::vector<Bytes> sizes(catalog.sizes().begin(), catalog.sizes().end());
    sizes[f] = std::max<Bytes>(1, size / 2);
    Instance candidate = inst;
    candidate_catalog(candidate) = catalog_with_sizes(std::move(sizes));
    if (pred(candidate)) {
      inst = std::move(candidate);
      any = true;
    }
  }
  return any;
}

/// Drops chunks of `items` (halves down to singletons) while `pred` keeps
/// failing. `erase(instance, start, count)` removes the chunk from a copy.
template <typename Instance, typename Pred, typename SizeFn, typename EraseFn>
bool drop_chunks_pass(Instance& inst, const Pred& pred, const SizeFn& size_of,
                      const EraseFn& erase) {
  bool any = false;
  std::size_t chunk = std::max<std::size_t>(1, size_of(inst) / 2);
  while (true) {
    for (std::size_t start = 0; start + chunk <= size_of(inst);) {
      if (size_of(inst) <= 1) break;  // keep at least one item
      Instance candidate = inst;
      erase(candidate, start, chunk);
      if (pred(candidate)) {
        inst = std::move(candidate);
        any = true;
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
    chunk /= 2;
  }
  return any;
}

}  // namespace

void compact_unused_files(Trace& trace) {
  std::vector<bool> used(trace.catalog.count(), false);
  for (const Request& job : trace.jobs) {
    for (FileId id : job.files) used[id] = true;
  }
  std::unordered_map<FileId, FileId> remap;
  std::vector<Bytes> sizes;
  for (std::size_t f = 0; f < trace.catalog.count(); ++f) {
    if (!used[f]) continue;
    remap[static_cast<FileId>(f)] = static_cast<FileId>(sizes.size());
    sizes.push_back(trace.catalog.size_of(static_cast<FileId>(f)));
  }
  if (sizes.size() == trace.catalog.count()) return;  // nothing unused
  for (Request& job : trace.jobs) {
    for (FileId& id : job.files) id = remap.at(id);
    job.canonicalize();
  }
  trace.catalog = FileCatalog(std::move(sizes));
}

SelectInstance shrink_select_instance(SelectInstance instance,
                                      const SelectPredicate& pred) {
  for (std::size_t round = 0; round < kMaxRounds; ++round) {
    bool progress = false;

    // Drop whole requests (chunk-wise, then singly).
    progress |= drop_chunks_pass(
        instance, pred,
        [](const SelectInstance& i) { return i.requests.size(); },
        [](SelectInstance& i, std::size_t start, std::size_t count) {
          i.requests.erase(
              i.requests.begin() + static_cast<std::ptrdiff_t>(start),
              i.requests.begin() + static_cast<std::ptrdiff_t>(start + count));
          i.values.erase(
              i.values.begin() + static_cast<std::ptrdiff_t>(start),
              i.values.begin() + static_cast<std::ptrdiff_t>(start + count));
        });

    // Drop individual files from bundles (removing emptied requests).
    for (std::size_t r = 0; r < instance.requests.size(); ++r) {
      for (std::size_t f = 0; f < instance.requests[r].files.size();) {
        SelectInstance candidate = instance;
        candidate.requests[r].files.erase(
            candidate.requests[r].files.begin() +
            static_cast<std::ptrdiff_t>(f));
        if (candidate.requests[r].files.empty()) {
          candidate.requests.erase(candidate.requests.begin() +
                                   static_cast<std::ptrdiff_t>(r));
          candidate.values.erase(candidate.values.begin() +
                                 static_cast<std::ptrdiff_t>(r));
        }
        if (pred(candidate)) {
          instance = std::move(candidate);
          progress = true;
          if (r >= instance.requests.size()) break;
        } else {
          ++f;
        }
      }
    }

    // Drop free files.
    for (std::size_t f = 0; f < instance.free_files.size();) {
      SelectInstance candidate = instance;
      candidate.free_files.erase(candidate.free_files.begin() +
                                 static_cast<std::ptrdiff_t>(f));
      if (pred(candidate)) {
        instance = std::move(candidate);
        progress = true;
      } else {
        ++f;
      }
    }

    // Halve file sizes and item values.
    progress |= halve_sizes_pass(instance, instance.catalog, pred);
    for (std::size_t i = 0; i < instance.values.size(); ++i) {
      if (instance.values[i] < 1.0) continue;
      SelectInstance candidate = instance;
      candidate.values[i] = std::floor(candidate.values[i] / 2.0);
      if (pred(candidate)) {
        instance = std::move(candidate);
        progress = true;
      }
    }

    if (!progress) break;
  }

  // Final semantics-preserving cleanup: drop unreferenced catalog files.
  {
    Trace as_trace = select_instance_to_trace(instance);
    compact_unused_files(as_trace);
    SelectInstance candidate = select_instance_from_trace(as_trace);
    if (pred(candidate)) instance = std::move(candidate);
  }
  return instance;
}

SimInstance shrink_sim_instance(SimInstance instance,
                                const SimPredicate& pred) {
  for (std::size_t round = 0; round < kMaxRounds; ++round) {
    bool progress = false;

    // Drop jobs (chunk-wise, then singly).
    progress |= drop_chunks_pass(
        instance, pred,
        [](const SimInstance& i) { return i.trace.jobs.size(); },
        [](SimInstance& i, std::size_t start, std::size_t count) {
          auto erase_range = [&](auto& v) {
            if (v.size() != i.trace.jobs.size()) return;
            v.erase(v.begin() + static_cast<std::ptrdiff_t>(start),
                    v.begin() + static_cast<std::ptrdiff_t>(start + count));
          };
          erase_range(i.trace.arrival_s);
          erase_range(i.trace.service_s);
          i.trace.jobs.erase(
              i.trace.jobs.begin() + static_cast<std::ptrdiff_t>(start),
              i.trace.jobs.begin() +
                  static_cast<std::ptrdiff_t>(start + count));
        });

    // Drop individual files from job bundles (removing emptied jobs).
    for (std::size_t j = 0; j < instance.trace.jobs.size(); ++j) {
      for (std::size_t f = 0; f < instance.trace.jobs[j].files.size();) {
        if (instance.trace.jobs.size() == 1 &&
            instance.trace.jobs[j].files.size() == 1) {
          break;  // keep at least one non-empty job
        }
        SimInstance candidate = instance;
        candidate.trace.jobs[j].files.erase(
            candidate.trace.jobs[j].files.begin() +
            static_cast<std::ptrdiff_t>(f));
        if (candidate.trace.jobs[j].files.empty()) {
          candidate.trace.jobs.erase(candidate.trace.jobs.begin() +
                                     static_cast<std::ptrdiff_t>(j));
        }
        if (pred(candidate)) {
          instance = std::move(candidate);
          progress = true;
          if (j >= instance.trace.jobs.size()) break;
        } else {
          ++f;
        }
      }
    }

    // Simplify the service configuration.
    if (instance.config.warmup_jobs != 0) {
      SimInstance candidate = instance;
      candidate.config.warmup_jobs = 0;
      if (pred(candidate)) {
        instance = std::move(candidate);
        progress = true;
      }
    }
    if (instance.config.queue_length > 1) {
      SimInstance candidate = instance;
      candidate.config.queue_length = 1;
      candidate.config.queue_mode = QueueMode::Batch;
      if (pred(candidate)) {
        instance = std::move(candidate);
        progress = true;
      }
    }

    // Halve file sizes.
    progress |= halve_sizes_pass(instance, instance.trace.catalog, pred);

    if (!progress) break;
  }

  // Drop unreferenced catalog files (semantics-preserving; verified).
  {
    SimInstance candidate = instance;
    compact_unused_files(candidate.trace);
    if (candidate.trace.catalog.count() != instance.trace.catalog.count() &&
        pred(candidate)) {
      instance = std::move(candidate);
    }
  }
  return instance;
}

}  // namespace fbc::testing
