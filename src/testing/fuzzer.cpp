#include "testing/fuzzer.hpp"

#include <algorithm>
#include <filesystem>
#include <iterator>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "testing/cluster_sim.hpp"
#include "testing/shrink.hpp"

#include "core/registry.hpp"

namespace fbc::testing {
namespace {

std::string queue_mode_name(QueueMode mode) {
  return mode == QueueMode::Sliding ? "sliding" : "batch";
}

/// ServiceConfig for the serving family: optfb on the Incremental engine
/// with the Reference engine attached as a lock-step shadow, so one
/// replay checks both batching equivalence and engine equivalence.
service::ServiceConfig serve_config(std::uint64_t seed) {
  service::ServiceConfig config;
  config.policy = "optfb";
  config.engine = SelectEngine::Incremental;
  config.seed = seed;
  config.policy_factory = [](const std::string& name,
                             const PolicyContext& context) {
    return make_shadow_policy("enginediff:" + name, context);
  };
  return config;
}

/// Runs the serial-vs-batched replay pair; returns the violation caught,
/// if any. EngineDivergence surfaces as its own oracle class.
std::optional<Violation> check_schedule(const SchedInstance& instance,
                                        std::size_t batch,
                                        std::uint64_t seed) {
  try {
    if (std::optional<std::string> diff =
            check_batch_equivalence(instance, batch, serve_config(seed)))
      return Violation{"serve_batch_equivalence", "optfb", *diff};
  } catch (const EngineDivergence& e) {
    return Violation{"serve_engine_diff", "optfb", e.what()};
  } catch (const std::exception& e) {
    return Violation{"serve_replay", "optfb", e.what()};
  }
  return std::nullopt;
}

/// Policies the cluster family draws from: the serving default, the
/// classic online baseline, and the paper's distributed online policy
/// (the one whose credits are designed to compose across shards).
constexpr const char* kClusterPolicies[] = {"optfb", "landlord",
                                            "dist-online"};

/// Runs the serial-router vs concurrent-router replay pair over a real
/// sharded cluster (optionally with a kill/revive fault plan); returns
/// the violation caught, if any.
std::optional<Violation> check_cluster(const SchedInstance& instance,
                                       const cluster::ClusterConfig& cluster,
                                       const FaultPlan& faults,
                                       const std::string& policy,
                                       std::uint64_t seed) {
  service::ServiceConfig config;
  config.policy = policy;
  config.seed = seed;
  std::string subject = policy + "/" + cluster::to_string(cluster.placement);
  if (!faults.empty())
    subject += "/faults=" + std::to_string(faults.events.size());
  try {
    if (std::optional<std::string> diff =
            check_cluster_equivalence(instance, config, cluster, faults))
      return Violation{"cluster_equivalence", subject, *diff};
  } catch (const std::exception& e) {
    // Audit violations, leaked scatter leases, lost deferred releases,
    // and stalled waves all surface as exceptions out of the replay.
    return Violation{"cluster_replay", subject, e.what()};
  }
  return std::nullopt;
}

/// Draws a kill/revive plan for `instance`: a few distinct victim shards
/// (never all of them, so placement always has somewhere to land), each
/// killed at a random wave boundary and, half the time, revived at a
/// later one -- the revive path is where deferred releases flush, so it
/// must be fuzzed as hard as the kill path.
FaultPlan generate_fault_plan(const SchedInstance& instance,
                              const cluster::ClusterConfig& cluster,
                              Rng& rng) {
  FaultPlan faults;
  const std::size_t wave_len = std::max<std::size_t>(1, instance.wave);
  const std::size_t waves =
      (instance.ops.size() + wave_len - 1) / wave_len;
  if (waves == 0 || cluster.shards < 2) return faults;
  std::vector<std::uint32_t> victims;
  for (std::uint32_t s = 0; s < cluster.shards; ++s) victims.push_back(s);
  const std::size_t kills = 1 + rng.index(cluster.shards - 1);
  for (std::size_t k = 0; k < kills; ++k) {
    // Partial Fisher-Yates: victims[k] is drawn without replacement.
    const std::size_t j = k + rng.index(victims.size() - k);
    std::swap(victims[k], victims[j]);
    FaultEvent kill;
    kill.wave = rng.index(waves);
    kill.shard = victims[k];
    kill.kill = true;
    faults.events.push_back(kill);
    if (kill.wave + 1 < waves && rng.bernoulli(0.5)) {
      FaultEvent revive;
      revive.wave = kill.wave + 1 + rng.index(waves - kill.wave - 1);
      revive.shard = victims[k];
      revive.kill = false;
      faults.events.push_back(revive);
    }
  }
  return faults;
}

/// Space-joined policy list for reproducer meta.
std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ' ';
    out += name;
  }
  return out;
}

/// Stamps failure provenance onto a reproducer trace.
void stamp(Trace& trace, const Violation& violation, std::uint64_t seed,
           std::uint64_t iteration) {
  trace.set_meta("oracle", violation.oracle);
  trace.set_meta("subject", violation.subject);
  // Oracle details are often multi-line state dumps, but meta values are
  // one line each on the wire -- flatten or the reproducer write throws.
  std::string detail = violation.detail;
  std::replace(detail.begin(), detail.end(), '\n', '|');
  trace.set_meta("detail", std::move(detail));
  trace.set_meta("seed", std::to_string(seed));
  trace.set_meta("iteration", std::to_string(iteration));
}

std::string write_reproducer(const Trace& trace, const std::string& out_dir,
                             const char* kind, std::uint64_t seed,
                             std::uint64_t iteration, std::ostream& log) {
  if (out_dir.empty()) return {};
  const std::string path = out_dir + "/fbcfuzz-" + kind + "-" +
                           std::to_string(seed) + "-" +
                           std::to_string(iteration) + ".trace";
  try {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);  // best effort
    save_trace(path, trace);
  } catch (const std::exception& e) {
    log << "fbcfuzz: failed to write reproducer " << path << ": " << e.what()
        << "\n";
    std::error_code ec;
    std::filesystem::remove(path, ec);  // drop any partial stub
    return {};
  }
  return path;
}

}  // namespace

FuzzReport run_fuzz(const FuzzConfig& config, std::ostream& log) {
  FuzzReport report;
  Rng master(config.seed);
  const std::vector<std::string> policies =
      config.policies.empty() ? policy_names() : config.policies;

  // One reproducer per distinct (oracle, subject) failure class.
  std::set<std::pair<std::string, std::string>> seen;
  auto fresh = [&](const Violation& v) {
    return seen.insert({v.oracle, v.subject}).second;
  };
  auto capped = [&] {
    return config.max_failures != 0 &&
           report.failures.size() >= config.max_failures;
  };

  for (std::uint64_t iter = 0; iter < config.iters && !capped(); ++iter) {
    ++report.iterations;
    const std::uint64_t iter_seed = master.derive_seed(iter);

    if (config.run_select) {
      Rng rng(iter_seed);
      SelectInstance instance =
          generate_select_instance(config.select_gen, rng);
      ++report.select_instances;
      SelectOracleStats stats;
      std::vector<Violation> violations = check_select_instance(
          instance, config.exact_node_budget, &stats);
      if (stats.exact_truncated) ++report.exact_truncations;
      for (const Violation& violation : violations) {
        if (!fresh(violation) || capped()) continue;
        log << "fbcfuzz: iter " << iter << ": " << violation.to_string()
            << "\n";
        SelectInstance repro = instance;
        if (config.shrink) {
          const std::uint64_t budget = config.exact_node_budget;
          repro = shrink_select_instance(
              std::move(repro), [&violation, budget](const SelectInstance& c) {
                return contains_failure(check_select_instance(c, budget),
                                        violation);
              });
        }
        Trace trace = select_instance_to_trace(repro);
        trace.set_meta("exact_nodes",
                       std::to_string(config.exact_node_budget));
        stamp(trace, violation, config.seed, iter);
        FuzzFailure failure;
        failure.violation = violation;
        failure.iteration = iter;
        failure.shrunk_jobs = repro.requests.size();
        failure.reproducer_path = write_reproducer(
            trace, config.out_dir, "select", config.seed, iter, log);
        log << "fbcfuzz: shrunk to " << failure.shrunk_jobs << " request(s)";
        if (!failure.reproducer_path.empty())
          log << ", wrote " << failure.reproducer_path;
        log << "\n";
        report.failures.push_back(std::move(failure));
      }
    }

    if (config.run_serve && !capped()) {
      Rng rng(iter_seed ^ 0x5e47ed1f5ULL);
      const SchedInstance instance =
          generate_sched_instance(config.sched_gen, rng);
      const std::size_t batch = 2 + rng.index(7);  // admission_batch 2..8
      ++report.serve_runs;
      std::optional<Violation> violation =
          check_schedule(instance, batch, iter_seed);
      if (violation.has_value() && fresh(*violation) && !capped()) {
        log << "fbcfuzz: iter " << iter << ": " << violation->to_string()
            << "\n";
        SchedInstance repro = instance;
        if (config.shrink) {
          const std::string oracle = violation->oracle;
          repro = shrink_sched_instance(
              std::move(repro),
              [batch, iter_seed, &oracle](const SchedInstance& c) {
                const std::optional<Violation> v =
                    check_schedule(c, batch, iter_seed);
                return v.has_value() && v->oracle == oracle;
              });
        }
        Trace trace = sched_instance_to_trace(repro);
        trace.set_meta("batch", std::to_string(batch));
        trace.set_meta("serve_seed", std::to_string(iter_seed));
        stamp(trace, *violation, config.seed, iter);
        FuzzFailure failure;
        failure.violation = std::move(*violation);
        failure.iteration = iter;
        failure.shrunk_jobs = repro.ops.size();
        failure.reproducer_path = write_reproducer(
            trace, config.out_dir, "serve", config.seed, iter, log);
        log << "fbcfuzz: shrunk to " << failure.shrunk_jobs << " op(s)";
        if (!failure.reproducer_path.empty())
          log << ", wrote " << failure.reproducer_path;
        log << "\n";
        report.failures.push_back(std::move(failure));
      }
    }

    if (config.run_cluster && !capped()) {
      Rng rng(iter_seed ^ 0xc1a57e4d1ULL);
      const SchedInstance instance =
          generate_sched_instance(config.sched_gen, rng);
      cluster::ClusterConfig cluster;
      cluster.shards = 2 + static_cast<std::uint32_t>(rng.index(3));
      cluster.placement = rng.bernoulli(0.5)
                              ? cluster::PlacementMode::BundleAffinity
                              : cluster::PlacementMode::HashFile;
      cluster.vnodes = 16;
      // Aggressive spill threshold so affinity placements actually
      // scatter at fuzz-sized caches.
      cluster.spill_threshold = 0.02 + rng.uniform_double(0.0, 0.2);
      // Low thresholds make health transitions reachable on fuzz-sized
      // schedules (one shard sees only a handful of ops per run).
      cluster.down_threshold = 1 + static_cast<std::uint32_t>(rng.index(3));
      const FaultPlan faults = rng.bernoulli(0.4)
                                   ? generate_fault_plan(instance, cluster, rng)
                                   : FaultPlan{};
      const std::string policy =
          kClusterPolicies[rng.index(std::size(kClusterPolicies))];
      ++report.cluster_runs;
      std::optional<Violation> violation =
          check_cluster(instance, cluster, faults, policy, iter_seed);
      if (violation.has_value() && fresh(*violation) && !capped()) {
        log << "fbcfuzz: iter " << iter << ": " << violation->to_string()
            << "\n";
        SchedInstance repro = instance;
        if (config.shrink) {
          const std::string oracle = violation->oracle;
          // The fault plan is held fixed while ops shrink: kill/revive
          // waves past the shrunk schedule's end simply never fire.
          repro = shrink_sched_instance(
              std::move(repro),
              [&cluster, &faults, &policy, iter_seed,
               &oracle](const SchedInstance& c) {
                const std::optional<Violation> v =
                    check_cluster(c, cluster, faults, policy, iter_seed);
                return v.has_value() && v->oracle == oracle;
              });
        }
        Trace trace = cluster_instance_to_trace(repro, cluster, faults);
        trace.set_meta("policy", policy);
        trace.set_meta("cluster_seed", std::to_string(iter_seed));
        stamp(trace, *violation, config.seed, iter);
        FuzzFailure failure;
        failure.violation = std::move(*violation);
        failure.iteration = iter;
        failure.shrunk_jobs = repro.ops.size();
        failure.reproducer_path = write_reproducer(
            trace, config.out_dir, "cluster", config.seed, iter, log);
        log << "fbcfuzz: shrunk to " << failure.shrunk_jobs << " op(s)";
        if (!failure.reproducer_path.empty())
          log << ", wrote " << failure.reproducer_path;
        log << "\n";
        report.failures.push_back(std::move(failure));
      }
    }

    if (config.run_optgen && !capped()) {
      Rng rng(iter_seed ^ 0x0917a6e41ULL);
      SimGenConfig gen = config.sim_gen;
      gen.drift_prob = 0.5;  // phase changes stress the oracle's window
      SimInstance instance = generate_sim_instance(gen, rng);
      // The oracle's service model is FCFS with no warm-up.
      instance.config.queue_length = 1;
      instance.config.queue_mode = QueueMode::Batch;
      instance.config.warmup_jobs = 0;
      OptgenCheckConfig check;
      check.cache_bytes = instance.config.cache_bytes;
      // Occasionally draw a tiny ring buffer so the interval-clipping
      // paths (truncated verdicts) are differential-tested too.
      check.window_quanta = rng.bernoulli(0.25) ? 1 + rng.index(16) : 4096;
      check.policies = policies;
      check.seed = iter_seed;
      ++report.optgen_runs;
      std::vector<Violation> violations = check_optgen(instance.trace, check);
      for (const Violation& violation : violations) {
        if (!fresh(violation) || capped()) continue;
        log << "fbcfuzz: iter " << iter << ": " << violation.to_string()
            << "\n";
        SimInstance repro = instance;
        if (config.shrink) {
          OptgenCheckConfig shrink_check = check;
          repro = shrink_sim_instance(
              std::move(repro),
              [&violation, shrink_check](const SimInstance& c) mutable {
                shrink_check.cache_bytes = c.config.cache_bytes;
                return contains_failure(check_optgen(c.trace, shrink_check),
                                        violation);
              });
        }
        Trace trace = repro.trace;
        trace.set_meta("kind", "optgen");
        trace.set_meta("cache_bytes",
                       std::to_string(repro.config.cache_bytes));
        trace.set_meta("window", std::to_string(check.window_quanta));
        trace.set_meta("policies", join_names(policies));
        trace.set_meta("policy_seed", std::to_string(iter_seed));
        stamp(trace, violation, config.seed, iter);
        FuzzFailure failure;
        failure.violation = violation;
        failure.iteration = iter;
        failure.shrunk_jobs = repro.trace.jobs.size();
        failure.reproducer_path = write_reproducer(
            trace, config.out_dir, "optgen", config.seed, iter, log);
        log << "fbcfuzz: shrunk to " << failure.shrunk_jobs << " job(s)";
        if (!failure.reproducer_path.empty())
          log << ", wrote " << failure.reproducer_path;
        log << "\n";
        report.failures.push_back(std::move(failure));
      }
    }

    if (config.run_sim && !capped()) {
      Rng rng(iter_seed ^ 0x51f7a11ceULL);
      const SimInstance instance = generate_sim_instance(config.sim_gen, rng);
      for (const std::string& policy : policies) {
        if (capped()) break;
        ++report.sim_runs;
        std::vector<Violation> violations = check_simulation(
            instance.trace, instance.config, policy, iter_seed);
        for (const Violation& violation : violations) {
          if (!fresh(violation) || capped()) continue;
          log << "fbcfuzz: iter " << iter << ": " << violation.to_string()
              << "\n";
          SimInstance repro = instance;
          if (config.shrink) {
            const std::uint64_t seed = iter_seed;
            repro = shrink_sim_instance(
                std::move(repro),
                [&violation, &policy, seed](const SimInstance& c) {
                  return contains_failure(
                      check_simulation(c.trace, c.config, policy, seed),
                      violation);
                });
          }
          Trace trace = repro.trace;
          trace.set_meta("kind", "sim");
          trace.set_meta("policy", policy);
          trace.set_meta("cache_bytes",
                         std::to_string(repro.config.cache_bytes));
          trace.set_meta("queue_length",
                         std::to_string(repro.config.queue_length));
          trace.set_meta("queue_mode",
                         queue_mode_name(repro.config.queue_mode));
          trace.set_meta("warmup", std::to_string(repro.config.warmup_jobs));
          trace.set_meta("policy_seed", std::to_string(iter_seed));
          stamp(trace, violation, config.seed, iter);
          FuzzFailure failure;
          failure.violation = violation;
          failure.iteration = iter;
          failure.shrunk_jobs = repro.trace.jobs.size();
          failure.reproducer_path = write_reproducer(
              trace, config.out_dir, "sim", config.seed, iter, log);
          log << "fbcfuzz: shrunk to " << failure.shrunk_jobs << " job(s)";
          if (!failure.reproducer_path.empty())
            log << ", wrote " << failure.reproducer_path;
          log << "\n";
          report.failures.push_back(std::move(failure));
        }
      }
    }
  }
  return report;
}

std::vector<Violation> replay_reproducer(const Trace& trace) {
  const std::string* kind = trace.meta_value("kind");
  if (kind == nullptr)
    throw std::runtime_error("replay: trace has no 'kind' meta entry");

  if (*kind == "select") {
    const SelectInstance instance = select_instance_from_trace(trace);
    std::uint64_t budget = 0;
    if (const std::string* nodes = trace.meta_value("exact_nodes"))
      budget = std::stoull(*nodes);
    return check_select_instance(instance, budget);
  }
  if (*kind == "serve") {
    const SchedInstance instance = sched_instance_from_trace(trace);
    std::size_t batch = 4;
    if (const std::string* b = trace.meta_value("batch"))
      batch = std::stoull(*b);
    std::uint64_t seed = 1;
    if (const std::string* s = trace.meta_value("serve_seed"))
      seed = std::stoull(*s);
    if (std::optional<Violation> v = check_schedule(instance, batch, seed))
      return {std::move(*v)};
    return {};
  }
  if (*kind == "cluster") {
    const auto [instance, cluster, faults] =
        cluster_instance_from_trace(trace);
    std::string policy = "optfb";
    if (const std::string* p = trace.meta_value("policy")) policy = *p;
    std::uint64_t seed = 1;
    if (const std::string* s = trace.meta_value("cluster_seed"))
      seed = std::stoull(*s);
    if (std::optional<Violation> v =
            check_cluster(instance, cluster, faults, policy, seed))
      return {std::move(*v)};
    return {};
  }
  if (*kind == "optgen") {
    const std::string* cache_bytes = trace.meta_value("cache_bytes");
    if (cache_bytes == nullptr)
      throw std::runtime_error(
          "replay: optgen reproducer needs 'cache_bytes' meta");
    OptgenCheckConfig check;
    check.cache_bytes = std::stoull(*cache_bytes);
    if (const std::string* window = trace.meta_value("window"))
      check.window_quanta = std::stoull(*window);
    if (const std::string* names = trace.meta_value("policies")) {
      std::istringstream row(*names);
      std::string name;
      while (row >> name) check.policies.push_back(name);
    }
    if (const std::string* s = trace.meta_value("policy_seed"))
      check.seed = std::stoull(*s);
    return check_optgen(trace, check);
  }
  if (*kind == "sim") {
    const std::string* policy = trace.meta_value("policy");
    const std::string* cache_bytes = trace.meta_value("cache_bytes");
    if (policy == nullptr || cache_bytes == nullptr)
      throw std::runtime_error(
          "replay: sim reproducer needs 'policy' and 'cache_bytes' meta");
    SimulatorConfig config;
    config.cache_bytes = std::stoull(*cache_bytes);
    if (const std::string* queue = trace.meta_value("queue_length"))
      config.queue_length = std::stoull(*queue);
    if (const std::string* mode = trace.meta_value("queue_mode"))
      config.queue_mode =
          *mode == "sliding" ? QueueMode::Sliding : QueueMode::Batch;
    if (const std::string* warmup = trace.meta_value("warmup"))
      config.warmup_jobs = std::stoull(*warmup);
    std::uint64_t seed = 0x5eedULL;
    if (const std::string* s = trace.meta_value("policy_seed"))
      seed = std::stoull(*s);
    return check_simulation(trace, config, *policy, seed);
  }
  throw std::runtime_error("replay: unknown reproducer kind '" + *kind + "'");
}

}  // namespace fbc::testing
