// InvariantAuditor: a SimulationObserver that independently re-checks the
// simulator's service-model guarantees after every admission.
//
// The simulator already enforces the policy contract inline; the auditor
// is the *differential* counterpart -- it recomputes everything from
// scratch (resident set sums, per-job hit/miss deltas, eviction bytes)
// and flags any disagreement with the cache or metrics objects, so a bug
// in either accounting path is caught by the other.
//
// Invariants audited after every job:
//   * capacity: used_bytes() <= capacity() and used_bytes() equals the
//     recomputed sum of resident file sizes; no duplicate resident ids;
//   * pinning: no file is left pinned once a job completes;
//   * residency: a serviced (non-unserviceable) job's whole bundle is
//     resident when it completes;
//   * accounting: metric deltas (jobs, hits, bytes requested/missed,
//     files requested/hit, evictions, prefetch bytes) match the observed
//     before/after cache states exactly.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/simulator.hpp"

namespace fbc::testing {

/// One detected oracle violation. `oracle` is a stable machine-readable
/// id ("sim.capacity", "select.bound", ...); `subject` names the policy
/// or greedy variant under test; `detail` is the human explanation.
struct Violation {
  std::string oracle;
  std::string subject;
  std::string detail;

  [[nodiscard]] std::string to_string() const {
    return oracle + " [" + subject + "]: " + detail;
  }
};

/// Re-checks simulator invariants after every admission (see file
/// comment). Attach with Simulator::set_observer(); violations accumulate
/// instead of throwing so one run reports every inconsistency it hits.
class InvariantAuditor : public SimulationObserver {
 public:
  /// `subject` labels the policy under test in emitted violations.
  InvariantAuditor(const FileCatalog& catalog, std::string subject);

  void on_job_start(const Request& request, const DiskCache& cache) override;
  void on_eviction(FileId id, const DiskCache& cache) override;
  void on_job_serviced(const Request& request, const DiskCache& cache,
                       const CacheMetrics& metrics) override;
  void on_run_complete(const DiskCache& cache,
                       const SimulationResult& result) override;

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t jobs_audited() const noexcept { return jobs_; }

 private:
  /// Counter snapshot of one CacheMetrics object, for delta checks.
  struct Snapshot {
    std::uint64_t jobs = 0;
    std::uint64_t request_hits = 0;
    std::uint64_t files_requested = 0;
    std::uint64_t file_hits = 0;
    Bytes bytes_requested = 0;
    Bytes bytes_missed = 0;
    std::uint64_t evictions = 0;
    Bytes bytes_evicted = 0;
    Bytes bytes_prefetched = 0;
    std::uint64_t unserviceable = 0;
  };
  static Snapshot snapshot(const CacheMetrics& metrics) noexcept;

  void report(const std::string& oracle, const std::string& detail);
  void audit_cache_state(const DiskCache& cache, const std::string& where);

  const FileCatalog* catalog_;
  std::string subject_;
  std::vector<Violation> violations_;
  std::uint64_t jobs_ = 0;

  // Per-job before-state, captured in on_job_start.
  Bytes used_before_ = 0;
  Bytes missing_before_ = 0;
  std::size_t files_resident_before_ = 0;
  std::uint64_t job_evictions_ = 0;
  Bytes job_evicted_bytes_ = 0;
  std::uint64_t total_evictions_ = 0;

  // Last-seen counters per metrics object (warm-up vs measured).
  std::unordered_map<const CacheMetrics*, Snapshot> last_;
};

}  // namespace fbc::testing
