// The differential fuzzing loop behind the fbcfuzz CLI.
//
// Every iteration derives an independent child seed, generates a random
// select instance and a random simulation input, and runs the full oracle
// battery (testing/oracles.hpp) on each. A failing iteration is shrunk to
// a minimal reproducer (testing/shrink.hpp) and written out as a
// self-contained v3 trace file that fbcfuzz --replay can re-check.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "testing/instance_gen.hpp"
#include "testing/oracles.hpp"
#include "testing/sched_sim.hpp"

namespace fbc::testing {

/// Configuration of one fuzzing campaign.
struct FuzzConfig {
  std::uint64_t seed = 1;
  std::uint64_t iters = 100;
  /// Which oracle families run.
  bool run_select = true;
  bool run_sim = true;
  /// Serving family (fbcfuzz --serve-diff): replays a random multi-client
  /// schedule against a real BundleServer, serial vs batched admission,
  /// with the Reference engine shadowing the Incremental one in lock-step.
  /// Catches batching divergences and engine divergences on the actual
  /// concurrent hot path rather than in the single-threaded simulator.
  bool run_serve = false;
  /// OPTgen family (fbcfuzz --optgen-diff): generates a drift-heavy FCFS
  /// trace, differential-tests the incremental BundleOPTgen against the
  /// brute-force interval-scan reference, and checks the capacity /
  /// nesting-chain / clairvoyant-bound / policy-dominance oracles
  /// (testing/oracles.hpp check_optgen). Mirrors --engine-diff.
  bool run_optgen = false;
  /// Cluster family (fbcfuzz --cluster-diff): replays a random schedule
  /// through a ClusterRouter over 2..4 real BundleServer shards, serial
  /// router vs concurrent wave replay, under a random placement mode and
  /// policy. The oracle is strict (bit-identical outcomes) for wave == 1
  /// and interleaving-invariant (per-wave status multisets, placement
  /// counters, audits, no leaked scatter lease) for wave > 1.
  bool run_cluster = false;
  /// Policies exercised by the simulation oracles; empty = every
  /// registered policy. Names may use the "underfree:" self-test prefix.
  std::vector<std::string> policies;
  /// Node budget for the exact reference solver (0 = unbounded).
  std::uint64_t exact_node_budget = 200000;
  /// Directory reproducer traces are written into ("" = don't write).
  std::string out_dir = ".";
  /// Shrink failures before reporting (slower, much better reproducers).
  bool shrink = true;
  /// Stop the campaign after this many distinct failures (0 = never).
  std::size_t max_failures = 8;
  SelectGenConfig select_gen;
  SimGenConfig sim_gen;
  SchedGenConfig sched_gen;
};

/// One caught-and-shrunk failure.
struct FuzzFailure {
  Violation violation;
  std::uint64_t iteration = 0;
  /// Path of the written reproducer trace ("" when out_dir was empty).
  std::string reproducer_path;
  /// Post-shrink instance size, in requests/jobs.
  std::size_t shrunk_jobs = 0;
};

/// Campaign summary.
struct FuzzReport {
  std::uint64_t iterations = 0;
  std::uint64_t select_instances = 0;
  std::uint64_t sim_runs = 0;
  std::uint64_t serve_runs = 0;
  std::uint64_t optgen_runs = 0;
  std::uint64_t cluster_runs = 0;
  std::uint64_t exact_truncations = 0;
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool clean() const noexcept { return failures.empty(); }
};

/// Runs the campaign, streaming one-line progress/failure notes to `log`.
FuzzReport run_fuzz(const FuzzConfig& config, std::ostream& log);

/// Re-checks a reproducer trace written by run_fuzz (meta-driven: select
/// instances re-run the select oracles, simulation reproducers re-run
/// check_simulation with the recorded policy and configuration). Returns
/// the violations found, empty when the trace no longer fails.
[[nodiscard]] std::vector<Violation> replay_reproducer(const Trace& trace);

}  // namespace fbc::testing
