// Seeded random FBC instance and job-trace generation for the fuzzer.
//
// Two generators, both fully determined by the caller's Rng state:
//
//   * generate_select_instance() -- a static FBC instance (catalog,
//     requests with values, capacity, optional free files) small enough
//     for exact_select() to serve as a differential oracle. The hot-set
//     knobs concentrate bundle draws on a few files, driving the maximum
//     file degree d(f) up -- exactly the regime where the Theorem 4.1
//     bound is loosest and greedy-variant bugs hide.
//
//   * generate_sim_instance() -- a replayable job trace plus a simulator
//     configuration (cache size, queue length/mode), built over the
//     workload/ file-pool generator with uniform or Zipf popularity.
//     Cache capacity is sometimes drawn below the largest bundle so the
//     unserviceable path is exercised too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/simulator.hpp"
#include "cache/types.hpp"
#include "core/opt_cache_select.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace fbc::testing {

/// A self-contained static FBC selection instance.
struct SelectInstance {
  FileCatalog catalog;
  std::vector<Request> requests;
  std::vector<double> values;  ///< parallel to `requests`, >= 0, integral
  std::vector<FileId> free_files;  ///< sorted, may be empty
  Bytes capacity = 0;

  /// Non-owning SelectionItem view; valid while `requests` is unmoved.
  [[nodiscard]] std::vector<SelectionItem> items() const;

  /// d(f) per file: how many requests' bundles contain it.
  [[nodiscard]] std::vector<std::uint32_t> degrees() const;
};

/// Knobs for generate_select_instance(). All ranges are inclusive.
struct SelectGenConfig {
  std::size_t min_files = 3;
  std::size_t max_files = 20;
  std::size_t min_requests = 2;
  std::size_t max_requests = 12;
  std::size_t max_bundle_files = 5;
  Bytes min_file_bytes = 1;
  Bytes max_file_bytes = 64;
  /// Shared-file overlap: with probability `hot_prob` each file pick is
  /// drawn from the first `hot_files` catalog entries instead of the whole
  /// catalog, raising d(f) on the hot set.
  double hot_prob = 0.6;
  std::size_t hot_files = 4;
  /// Item values are uniform integers in [0, max_value] (0 exercises the
  /// worthless-item paths).
  std::uint64_t max_value = 12;
  /// Probability that the instance declares free files (an incoming
  /// bundle, as OptFileBundle passes them).
  double free_file_prob = 0.4;
};

/// Generates one random instance; deterministic in the Rng state.
[[nodiscard]] SelectInstance generate_select_instance(
    const SelectGenConfig& config, Rng& rng);

/// A replayable simulation input: job trace plus simulator configuration.
struct SimInstance {
  Trace trace;
  SimulatorConfig config;
};

/// Knobs for generate_sim_instance(). All ranges are inclusive.
struct SimGenConfig {
  std::size_t min_files = 4;
  std::size_t max_files = 24;
  std::size_t min_pool = 3;
  std::size_t max_pool = 12;
  std::size_t min_jobs = 4;
  std::size_t max_jobs = 48;
  std::size_t max_bundle_files = 5;
  Bytes min_file_bytes = 1;
  Bytes max_file_bytes = 64;
  /// Hot-set overlap, as in SelectGenConfig.
  double hot_prob = 0.5;
  std::size_t hot_files = 4;
  /// Job popularity over the pool: Zipf(alpha) with probability
  /// `zipf_prob` (alpha drawn uniform in [0.5, zipf_alpha_max]), else
  /// uniform.
  double zipf_prob = 0.5;
  double zipf_alpha_max = 1.5;
  /// Probability that the cache is drawn smaller than the largest bundle,
  /// exercising the unserviceable path.
  double undersized_prob = 0.1;
  /// Probability of a mid-trace popularity drift: halfway through the job
  /// stream the pool indexing rotates by half the pool, so the popular
  /// bundles swap identity (a phase change for adaptive policies and the
  /// OPTgen window). 0 leaves the Rng stream byte-identical to the
  /// pre-drift generator, preserving seeded reproducers.
  double drift_prob = 0.0;
  /// Queue length is uniform in [1, max_queue_length]; mode is a coin
  /// flip between Batch and Sliding when > 1.
  std::size_t max_queue_length = 4;
  /// Warm-up prefix is uniform in [0, max_warmup].
  std::size_t max_warmup = 3;
};

/// Generates one random simulation input; deterministic in the Rng state.
[[nodiscard]] SimInstance generate_sim_instance(const SimGenConfig& config,
                                                Rng& rng);

/// Serializes a select instance as a v3 trace: one (untimed) job per
/// request plus `kind/capacity/values/free` meta entries, so reproducers
/// and regression fixtures are plain trace files per docs/TRACE-FORMAT.md.
[[nodiscard]] Trace select_instance_to_trace(const SelectInstance& instance);

/// Parses a trace produced by select_instance_to_trace(). Throws
/// std::runtime_error when the required meta entries are missing or
/// malformed.
[[nodiscard]] SelectInstance select_instance_from_trace(const Trace& trace);

}  // namespace fbc::testing
