#include "testing/cluster_sim.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/shard.hpp"
#include "grid/mss.hpp"

namespace fbc::testing {
namespace {

using service::AcquireResult;
using service::AcquireStatus;
using service::BundleServer;
using service::ServiceConfig;

/// Spins until `ready` returns true; throws after ~10s (same contract as
/// sched_sim's await -- a stalled harness must fail, not hang).
template <typename Pred>
void await(const Pred& ready, const char* what) {
  for (int i = 0; i < 100000; ++i) {
    if (ready()) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  throw std::runtime_error(std::string("cluster_sim: stalled waiting for ") +
                           what);
}

/// The N servers + shards + router a replay runs against. The router is
/// built last and destroyed first (member order), matching its "shards
/// outlive the router" contract. Every shard is wrapped in a
/// FaultInjectionShard (a passthrough while alive) so a FaultPlan can
/// kill/revive it mid-replay; `faulty` aliases the wrappers, which the
/// router owns.
struct ClusterStack {
  std::vector<std::unique_ptr<BundleServer>> servers;
  std::vector<cluster::FaultInjectionShard*> faulty;
  std::unique_ptr<cluster::ClusterRouter> router;
};

ClusterStack build_stack(const SchedInstance& instance, ServiceConfig config,
                         const cluster::ClusterConfig& cluster,
                         MassStorageSystem& mss) {
  ClusterStack stack;
  std::vector<std::unique_ptr<cluster::Shard>> shards;
  for (std::uint32_t s = 0; s < cluster.shards; ++s) {
    ServiceConfig shard_config = config;
    shard_config.shard_id = s;
    stack.servers.push_back(
        std::make_unique<BundleServer>(shard_config, mss));
    shards.push_back(std::make_unique<cluster::FaultInjectionShard>(
        std::make_unique<cluster::LocalShard>(*stack.servers.back())));
    stack.faulty.push_back(
        static_cast<cluster::FaultInjectionShard*>(shards.back().get()));
  }
  stack.router = std::make_unique<cluster::ClusterRouter>(
      cluster, instance.catalog, config.cache_bytes, std::move(shards));
  return stack;
}

/// Applies every event of `faults` scheduled for `wave` -- kill flips the
/// wrapper, revive flips it back and probes the shard so the router's
/// health state (and its deferred-release flush) transitions here, not at
/// some interleaving-dependent later success.
void apply_faults(const FaultPlan& faults, std::size_t wave,
                  ClusterStack& stack) {
  for (const FaultEvent& e : faults.events) {
    if (e.wave != wave || e.shard >= stack.faulty.size()) continue;
    if (e.kill) {
      stack.faulty[e.shard]->kill();
    } else {
      stack.faulty[e.shard]->revive();
      stack.router->probe(e.shard);
    }
  }
}

std::uint64_t total_queue_depth(const ClusterStack& stack) {
  std::uint64_t depth = 0;
  for (const auto& server : stack.servers) depth += server->stats().queue_depth;
  return depth;
}

}  // namespace

std::string to_string(const ClusterOutcome& outcome) {
  std::ostringstream out;
  for (std::size_t i = 0; i < outcome.grants.size(); ++i) {
    const GrantRecord& g = outcome.grants[i];
    out << "op " << i << ": client " << g.client << " status "
        << static_cast<int>(g.status) << " hit " << static_cast<int>(g.hit)
        << "\n";
  }
  for (std::size_t s = 0; s < outcome.resident.size(); ++s) {
    out << "shard " << s << " resident:";
    for (FileId id : outcome.resident[s]) out << ' ' << id;
    out << "\n";
  }
  out << "requests=" << outcome.requests << " hits=" << outcome.request_hits
      << " evictions=" << outcome.evictions
      << " rejected_full=" << outcome.rejected_full
      << " single=" << outcome.single_acquires
      << " scatter=" << outcome.scatter_acquires
      << " rollbacks=" << outcome.rollbacks
      << " rerouted=" << outcome.rerouted
      << " down=" << outcome.shard_down_events
      << " recovered=" << outcome.shard_recoveries << "\n";
  return out.str();
}

Bytes cluster_feasible_floor(const SchedInstance& instance) {
  // Same pin/release bookkeeping as feasible_cache_floor, but the per-wave
  // requirement is the *whole wave's* bundle bytes on top of what is
  // pinned when the wave starts: within a wave, per-shard admission order
  // is interleaving-dependent, so an admission must fit even if every
  // other wave member was admitted (and pinned) first. A shard holds at
  // most the full bundles' worth of those pins, so this total bounds
  // every shard under every placement.
  std::vector<std::uint32_t> pins(instance.catalog.count(), 0);
  Bytes pinned = 0;
  const auto pin = [&](const Request& r) {
    for (FileId id : r.files)
      if (pins[id]++ == 0) pinned += instance.catalog.size_of(id);
  };
  const auto unpin = [&](const Request& r) {
    for (FileId id : r.files)
      if (--pins[id] == 0) pinned -= instance.catalog.size_of(id);
  };
  std::vector<std::deque<const Request*>> held;
  for (const SchedOp& op : instance.ops)
    if (op.client >= held.size()) held.resize(op.client + 1);
  Bytes floor = 0;
  for (std::size_t start = 0; start < instance.ops.size();
       start += instance.wave) {
    const std::size_t end =
        std::min(instance.ops.size(), start + instance.wave);
    for (std::size_t i = start; i < end; ++i) {
      const SchedOp& op = instance.ops[i];
      if (op.release_oldest && !held[op.client].empty()) {
        unpin(*held[op.client].front());
        held[op.client].pop_front();
      }
    }
    Bytes wave_bytes = 0;
    for (std::size_t i = start; i < end; ++i)
      wave_bytes +=
          instance.catalog.bundle_bytes(instance.ops[i].request.files);
    floor = std::max(floor, pinned + wave_bytes);
    for (std::size_t i = start; i < end; ++i) {
      const SchedOp& op = instance.ops[i];
      pin(op.request);
      held[op.client].push_back(&op.request);
    }
  }
  return floor;
}

ClusterOutcome run_cluster_schedule(const SchedInstance& instance,
                                    ServiceConfig config,
                                    const cluster::ClusterConfig& cluster,
                                    bool concurrent,
                                    const FaultPlan& faults) {
  // The instance's capacity is raised to the cluster floor so concurrent
  // replays stay stall-free under any intra-wave interleaving; serial
  // replays use the same capacity so the wave == 1 strict oracle compares
  // like with like. (The floor sums whole-wave bytes, so it also covers
  // any re-routed placement a fault forces.)
  config.cache_bytes =
      std::max(instance.cache_bytes, cluster_feasible_floor(instance));
  config.order = service::AdmitOrder::Fifo;
  config.time_scale = 0.0;
  // probe_ms = 0 makes down shards routable on every request: health
  // marks never change placement, each request attempts its healthy home
  // and re-routes on the thrown fault, so the whole acquire path stays a
  // pure function of (request, wave's killed set) -- replayable.
  cluster::ClusterConfig cluster_config = cluster;
  cluster_config.probe_ms = 0;
  MassStorageSystem mss(default_tiers(), instance.catalog);
  ClusterStack stack = build_stack(instance, config, cluster_config, mss);
  cluster::ClusterRouter& router = *stack.router;
  const std::size_t wave_len = std::max<std::size_t>(1, instance.wave);

  ClusterOutcome outcome;
  outcome.grants.resize(instance.ops.size());
  std::vector<std::deque<service::LeaseId>> held;
  for (const SchedOp& op : instance.ops)
    if (op.client >= held.size()) held.resize(op.client + 1);

  std::vector<AcquireResult> results(instance.ops.size());
  if (!concurrent) {
    for (std::size_t i = 0; i < instance.ops.size(); ++i) {
      const SchedOp& op = instance.ops[i];
      // Serial replay honors the same wave boundaries the concurrent one
      // does, so both replays see identical killed sets per op.
      if (i % wave_len == 0) apply_faults(faults, i / wave_len, stack);
      if (op.release_oldest && !held[op.client].empty()) {
        router.release(held[op.client].front());
        held[op.client].pop_front();
      }
      results[i] = router.acquire(op.request);
      // Hold the lease as soon as it is granted: a later release_oldest
      // op must actually release it mid-replay, exactly as the
      // concurrent path (and cluster_feasible_floor's bookkeeping) does.
      // Deferring the pushes to the end would silently turn every
      // release op into a no-op and over-pin the shards.
      if (results[i].status == AcquireStatus::Ok)
        held[op.client].push_back(results[i].lease);
    }
  } else {
    std::vector<std::exception_ptr> errors(instance.ops.size());
    for (std::size_t start = 0; start < instance.ops.size();
         start += instance.wave) {
      const std::size_t end =
          std::min(instance.ops.size(), start + instance.wave);
      apply_faults(faults, start / wave_len, stack);
      for (const auto& server : stack.servers)
        server->set_admission_paused(true);
      std::vector<std::thread> threads;
      std::vector<std::atomic<bool>> done(end - start);
      std::uint64_t queued = 0;
      for (std::size_t i = start; i < end; ++i) {
        const SchedOp& op = instance.ops[i];
        if (op.release_oldest && !held[op.client].empty()) {
          router.release(held[op.client].front());
          held[op.client].pop_front();
        }
        std::atomic<bool>& flag = done[i - start];
        threads.emplace_back([&router, &op, &results, &errors, &flag, i] {
          // Same containment as sched_sim: an exception out of acquire
          // closes the whole cluster so queued waiters return Closed
          // instead of stranding the wave, and is rethrown after the join.
          try {
            results[i] = router.acquire(op.request);
          } catch (...) {
            errors[i] = std::current_exception();
            router.close();
          }
          flag.store(true, std::memory_order_release);
        });
        // Arrival order is program order. While admission is paused a
        // scatter acquire sits in its *first* shard's queue, so one op
        // contributes exactly one queued entry (or finishes early on a
        // pre-queue rejection); summed depth makes the wait placement-
        // agnostic.
        const std::uint64_t target = queued + 1;
        await(
            [&] {
              return total_queue_depth(stack) >= target ||
                     done[i - start].load(std::memory_order_acquire);
            },
            "enqueue");
        if (total_queue_depth(stack) >= target) ++queued;
      }
      for (const auto& server : stack.servers)
        server->set_admission_paused(false);
      for (std::thread& t : threads) t.join();
      for (std::size_t i = start; i < end; ++i)
        if (errors[i]) std::rethrow_exception(errors[i]);
      for (std::size_t i = start; i < end; ++i)
        if (results[i].status == AcquireStatus::Ok)
          held[instance.ops[i].client].push_back(results[i].lease);
    }
  }

  for (std::size_t i = 0; i < instance.ops.size(); ++i) {
    const SchedOp& op = instance.ops[i];
    GrantRecord& g = outcome.grants[i];
    g.client = op.client;
    g.status = static_cast<std::uint8_t>(results[i].status);
    g.hit = results[i].request_hit ? 1 : 0;
  }

  // Revive the whole fleet before the final drain: probing a revived
  // shard flushes its deferred releases, so every lease a kill parked
  // must come home -- the audits below are the no-lease-lost oracle.
  for (std::size_t s = 0; s < stack.faulty.size(); ++s) {
    stack.faulty[s]->revive();
    router.probe(s);
  }
  for (std::deque<service::LeaseId>& leases : held)
    for (service::LeaseId lease : leases) router.release(lease);

  for (std::size_t s = 0; s < stack.servers.size(); ++s) {
    const std::vector<std::string> violations = stack.servers[s]->audit();
    if (!violations.empty())
      throw std::runtime_error("cluster_sim: shard " + std::to_string(s) +
                               " audit failed after replay: " +
                               violations.front());
  }
  if (router.scatter_leases() != 0)
    throw std::runtime_error(
        "cluster_sim: " + std::to_string(router.scatter_leases()) +
        " scatter leases outstanding after replay");
  if (router.pending_releases() != 0)
    throw std::runtime_error(
        "cluster_sim: " + std::to_string(router.pending_releases()) +
        " deferred releases undelivered after full recovery");

  const service::ServiceStats stats = router.stats();
  outcome.requests = stats.requests;
  outcome.request_hits = stats.request_hits;
  outcome.evictions = stats.evictions;
  outcome.rejected_full = stats.rejected_full;
  for (const auto& server : stack.servers) {
    outcome.resident.push_back(server->resident_files());
    std::sort(outcome.resident.back().begin(), outcome.resident.back().end());
  }
  const service::MetricsSnapshot metrics = router.metrics();
  for (const auto& [name, value] : metrics.counters) {
    if (name == "grid.acquire.single") outcome.single_acquires = value;
    if (name == "grid.acquire.scatter") outcome.scatter_acquires = value;
    if (name == "grid.acquire.rollback") outcome.rollbacks = value;
    if (name == "grid.acquire.rerouted") outcome.rerouted = value;
    if (name == "grid.shard.down") outcome.shard_down_events = value;
    if (name == "grid.shard.recovered") outcome.shard_recoveries = value;
  }
  return outcome;
}

std::optional<std::string> check_cluster_equivalence(
    const SchedInstance& instance, const ServiceConfig& config,
    const cluster::ClusterConfig& cluster, const FaultPlan& faults) {
  const ClusterOutcome serial =
      run_cluster_schedule(instance, config, cluster, false, faults);
  const ClusterOutcome conc =
      run_cluster_schedule(instance, config, cluster, true, faults);

  const auto dump = [&](const char* why) {
    std::ostringstream out;
    out << "concurrent router diverged from serial replay (" << why
        << ", shards=" << cluster.shards
        << " placement=" << cluster::to_string(cluster.placement)
        << " wave=" << instance.wave << " faults=" << faults.events.size()
        << ")\n--- serial ---\n"
        << to_string(serial) << "--- concurrent ---\n"
        << to_string(conc);
    return out.str();
  };

  if (instance.wave <= 1) {
    // Sequential arrival on both sides: the replays must be bit-identical.
    if (serial == conc) return std::nullopt;
    return dump("strict");
  }

  // wave > 1: per-shard admission order within a wave is interleaving-
  // dependent by design (scatter sub-acquires race the rest of the wave),
  // so hits, evictions and residency may legitimately differ. What must
  // still hold under any interleaving:
  //  - routing is a pure function of the request, so the single/scatter
  //    split, sub-request totals, and rollback count are fixed;
  //  - the capacity floor makes every admission feasible in any order, so
  //    each wave's multiset of (client, status) is fixed.
  if (serial.single_acquires != conc.single_acquires ||
      serial.scatter_acquires != conc.scatter_acquires ||
      serial.rollbacks != conc.rollbacks)
    return dump("placement counters");
  if (serial.requests != conc.requests) return dump("sub-request total");
  // Faults are applied at the same wave boundaries in both replays and
  // probe_ms = 0 keeps routing interleaving-independent, so each
  // request's plan -- and with it the reroute count -- is a pure
  // function of (request, wave's killed set).
  if (serial.rerouted != conc.rerouted) return dump("reroute count");
  // The down/recovered transition COUNTS are not interleaving-invariant
  // at wave > 1: whether a killed shard crosses down_threshold depends
  // on how much traffic (acquires plus deferred-release flushes) happens
  // to target it before the revive, and that varies with grant order.
  // What must hold in EACH replay on its own:
  //  - the end-of-replay revive + probe sweep recovers every down
  //    shard, so the transition counts balance exactly;
  //  - a down transition needs a kill event to cause it, so the count
  //    is bounded by the plan's kills.
  std::size_t kills = 0;
  for (const FaultEvent& event : faults.events) kills += event.kill ? 1 : 0;
  for (const ClusterOutcome* o : {&serial, &conc}) {
    if (o->shard_down_events != o->shard_recoveries)
      return dump("unbalanced health transitions");
    if (o->shard_down_events > kills)
      return dump("down transitions exceed plan kills");
  }
  for (std::size_t start = 0; start < instance.ops.size();
       start += instance.wave) {
    const std::size_t end =
        std::min(instance.ops.size(), start + instance.wave);
    std::vector<std::pair<std::uint32_t, std::uint8_t>> a;
    std::vector<std::pair<std::uint32_t, std::uint8_t>> b;
    for (std::size_t i = start; i < end; ++i) {
      a.emplace_back(serial.grants[i].client, serial.grants[i].status);
      b.emplace_back(conc.grants[i].client, conc.grants[i].status);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) return dump("wave status multiset");
  }
  return std::nullopt;
}

Trace cluster_instance_to_trace(const SchedInstance& instance,
                                const cluster::ClusterConfig& cluster,
                                const FaultPlan& faults) {
  Trace trace = sched_instance_to_trace(instance);
  // meta_value() reads the first entry per key, so rewrite the sched
  // trace's kind in place rather than appending a shadowed duplicate.
  for (auto& [key, value] : trace.meta)
    if (key == "kind") value = "cluster";
  trace.set_meta("shards", std::to_string(cluster.shards));
  trace.set_meta("placement", cluster::to_string(cluster.placement));
  trace.set_meta("vnodes", std::to_string(cluster.vnodes));
  std::ostringstream spill;
  spill << cluster.spill_threshold;
  trace.set_meta("spill_threshold", spill.str());
  if (!faults.empty()) {
    // down_threshold shapes the health-transition metrics the oracle
    // compares, so a faulted reproducer must pin it.
    trace.set_meta("down_threshold", std::to_string(cluster.down_threshold));
    std::ostringstream plan;
    for (std::size_t i = 0; i < faults.events.size(); ++i) {
      const FaultEvent& e = faults.events[i];
      if (i != 0) plan << ';';
      plan << e.wave << ':' << e.shard << ':'
           << (e.kill ? "kill" : "revive");
    }
    trace.set_meta("faults", plan.str());
  }
  return trace;
}

ClusterTraceParts cluster_instance_from_trace(const Trace& trace) {
  ClusterTraceParts parts;
  parts.instance = sched_instance_from_trace(trace);
  const std::string* shards = trace.meta_value("shards");
  const std::string* placement = trace.meta_value("placement");
  const std::string* vnodes = trace.meta_value("vnodes");
  const std::string* spill = trace.meta_value("spill_threshold");
  if (shards == nullptr || placement == nullptr || vnodes == nullptr ||
      spill == nullptr)
    throw std::runtime_error(
        "cluster reproducer needs shards/placement/vnodes/spill_threshold "
        "meta");
  parts.cluster.shards = static_cast<std::uint32_t>(std::stoul(*shards));
  parts.cluster.placement = cluster::parse_placement(*placement);
  parts.cluster.vnodes = static_cast<std::uint32_t>(std::stoul(*vnodes));
  parts.cluster.spill_threshold = std::stod(*spill);
  if (const std::string* threshold = trace.meta_value("down_threshold"))
    parts.cluster.down_threshold =
        static_cast<std::uint32_t>(std::stoul(*threshold));
  if (const std::string* plan = trace.meta_value("faults")) {
    std::istringstream in(*plan);
    std::string clause;
    while (std::getline(in, clause, ';')) {
      if (clause.empty()) continue;
      const std::size_t first = clause.find(':');
      const std::size_t second = clause.find(':', first + 1);
      if (first == std::string::npos || second == std::string::npos)
        throw std::runtime_error("cluster reproducer has a malformed "
                                 "faults clause: " +
                                 clause);
      FaultEvent event;
      event.wave = std::stoul(clause.substr(0, first));
      event.shard = static_cast<std::uint32_t>(
          std::stoul(clause.substr(first + 1, second - first - 1)));
      const std::string verb = clause.substr(second + 1);
      if (verb != "kill" && verb != "revive")
        throw std::runtime_error("cluster reproducer has a malformed "
                                 "faults clause: " +
                                 clause);
      event.kill = verb == "kill";
      parts.faults.events.push_back(event);
    }
  }
  return parts;
}

}  // namespace fbc::testing
