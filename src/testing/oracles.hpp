// Differential oracles for the fuzzer.
//
// check_select_instance() runs every OptCacheSelect variant against the
// exact branch-and-bound solver on one instance and checks:
//   * structure  -- chosen indices unique/valid/positive-value, reported
//     total equals the recomputed sum, `files` is exactly the union of
//     chosen bundles minus the free files, `file_bytes` matches;
//   * feasibility -- the chosen union fits the budget;
//   * step-3 floor -- the result is at least the best single request that
//     fits alone (Algorithm 1 step 3);
//   * bounds (Theorem 4.1) -- Basic/Resort/Seeded1 reach at least
//     1/2 (1 - e^{-1/d}) of the exact optimum and Seeded2 at least
//     (1 - e^{-1/d}); no variant exceeds the optimum (which would convict
//     exact_select instead);
//   * dominance -- Seeded2 >= Seeded1 >= Resort (supersets of the same
//     seed enumeration).
//
// check_simulation() replays a trace through the Simulator under one
// registered policy with an InvariantAuditor attached, converting policy
// contract exceptions into violations. The reserved policy-name prefix
// "underfree:" wraps the named policy in a deliberately broken adapter
// that drops its last victim -- a self-test hook proving the pipeline
// catches capacity bugs (see docs/FUZZING.md).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/policy.hpp"
#include "core/opt_file_bundle.hpp"
#include "core/registry.hpp"
#include "testing/audit.hpp"
#include "testing/instance_gen.hpp"

namespace fbc::testing {

/// Side information from one check_select_instance() call.
struct SelectOracleStats {
  /// Exact solve hit its node budget: ratio oracles were skipped because
  /// the reference value is only a lower bound.
  bool exact_truncated = false;
  std::uint64_t exact_nodes = 0;
};

/// Runs all select oracles on `instance` (see file comment). The exact
/// reference solve is bounded by `exact_node_budget` nodes (0 = unbounded).
[[nodiscard]] std::vector<Violation> check_select_instance(
    const SelectInstance& instance, std::uint64_t exact_node_budget = 0,
    SelectOracleStats* stats = nullptr);

/// Instantiates `policy_name` (registry name, or "underfree:<name>" for
/// the broken self-test adapter) and replays `trace` under `config` with
/// an InvariantAuditor attached.
[[nodiscard]] std::vector<Violation> check_simulation(
    const Trace& trace, const SimulatorConfig& config,
    const std::string& policy_name, std::uint64_t seed = 0x5eedULL);

/// Wraps `inner` so select_victims drops its last victim whenever more
/// than one is chosen -- under-freeing space. Exposed for the fuzzer's
/// bug-injection self-test.
[[nodiscard]] PolicyPtr make_underfree_policy(PolicyPtr inner);

/// Thrown by the engine-diff adapter at the first decision where the
/// Reference and Incremental selection engines disagree. check_simulation
/// converts it into an "engine.divergence" violation, which the fuzzer
/// then shrinks like any other failure.
class EngineDivergence : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Wraps two OptFileBundle instances (Reference- and Incremental-engined,
/// otherwise identically configured) in a lock-step adapter: every hook is
/// forwarded to both, every decision (victims, selection result,
/// candidate count, prefetch list, queue pick) is compared field by field,
/// and the first mismatch throws EngineDivergence. Registered under the
/// "enginediff:<optfb-name>" policy-name prefix (mirroring "underfree:").
[[nodiscard]] PolicyPtr make_engine_diff_policy(
    std::unique_ptr<OptFileBundlePolicy> reference,
    std::unique_ptr<OptFileBundlePolicy> incremental);

/// Convenience overload: builds the Reference/Incremental pair from one
/// config (whose `engine` field is overridden per instance).
[[nodiscard]] PolicyPtr make_engine_diff_policy(const FileCatalog& catalog,
                                                OptFileBundleConfig config);

/// Policy factory understanding the testing prefixes: "underfree:<name>"
/// and "enginediff:<optfb-name>" build the corresponding checked adapter,
/// anything else falls through to make_policy. This is the function the
/// serving tools install as ServiceConfig::policy_factory when
/// --shadow-diff is set, so a BundleServer runs the Reference engine in
/// lock-step shadow of the Incremental one and throws EngineDivergence
/// out of acquire() at the first disagreeing decision.
[[nodiscard]] PolicyPtr make_shadow_policy(const std::string& policy_name,
                                           const PolicyContext& context);

/// The engines_agree oracle: replays `trace` under the engine-diff adapter
/// for `policy_name` (an optfb* registry name, without prefix) and reports
/// an "engine.divergence" violation at the first disagreement, plus any
/// ordinary simulation violations.
[[nodiscard]] std::vector<Violation> check_engines_agree(
    const Trace& trace, const SimulatorConfig& config,
    const std::string& policy_name, std::uint64_t seed = 0x5eedULL);

/// Configuration for the BundleOPTgen cross-check.
struct OptgenCheckConfig {
  /// Cache capacity the oracle and the policy replays use. Required, > 0.
  Bytes cache_bytes = 0;
  /// Oracle ring-buffer horizon.
  std::size_t window_quanta = 4096;
  /// Policies replayed (FCFS, no warm-up) for the dominance oracle; the
  /// testing prefixes ("underfree:", "enginediff:") are understood.
  std::vector<std::string> policies;
  /// Seed passed to the policy context (stochastic policies).
  std::uint64_t seed = 0x5eedULL;
};

/// The OPTgen oracle cross-check, run on every optgen-family fuzz trace:
///   * divergence -- the incremental BundleOPTgen and the brute-force
///     interval-scan reference must agree on every verdict, every final
///     statistic (except the cost counter) and every in-window occupancy
///     ("optgen.divergence");
///   * capacity -- forced + committed occupancy never exceeds the cache
///     capacity at any quantum ("optgen.capacity");
///   * chain -- per-verdict nesting opt_hit => demand_feasible =>
///     reuse_feasible => serviced ("optgen.chain");
///   * lookahead -- the oracle's bounds never exceed the clairvoyant
///     repeat bound from core/bounds ("optgen.lookahead");
///   * dominance -- every replayed online policy's request hits stay <=
///     the reuse bound, and <= the demand bound for non-prefetching
///     policies ("optgen.dominance").
[[nodiscard]] std::vector<Violation> check_optgen(
    const Trace& trace, const OptgenCheckConfig& config);

/// True when `a` and `b` refer to the same failure class (same oracle id
/// and subject) -- the shrinking predicate's match criterion.
[[nodiscard]] bool same_failure(const Violation& a, const Violation& b);

/// True when `violations` contains a failure matching `target`.
[[nodiscard]] bool contains_failure(const std::vector<Violation>& violations,
                                    const Violation& target);

}  // namespace fbc::testing
