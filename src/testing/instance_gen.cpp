#include "testing/instance_gen.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "workload/distributions.hpp"
#include "workload/file_pool.hpp"

namespace fbc::testing {
namespace {

/// Draws a bundle of `k` distinct files, biased toward the hot set.
std::vector<FileId> draw_bundle(std::size_t k, std::size_t num_files,
                                double hot_prob, std::size_t hot_files,
                                Rng& rng) {
  const std::size_t hot = std::min(std::max<std::size_t>(hot_files, 1),
                                   num_files);
  std::vector<FileId> files;
  files.reserve(k);
  // Rejection-sample distinct ids; k is tiny (<= max_bundle_files). Once
  // every hot id is taken the draw must fall back to the whole catalog or
  // hot_prob == 1 with k > hot would never terminate.
  while (files.size() < k) {
    const std::size_t hot_used = static_cast<std::size_t>(
        std::count_if(files.begin(), files.end(),
                      [&](FileId id) { return id < hot; }));
    const std::size_t pool =
        hot_used < hot && rng.bernoulli(hot_prob) ? hot : num_files;
    const FileId id = static_cast<FileId>(rng.index(pool));
    if (std::find(files.begin(), files.end(), id) == files.end())
      files.push_back(id);
  }
  return files;
}

std::size_t uniform_size(std::size_t lo, std::size_t hi, Rng& rng) {
  return static_cast<std::size_t>(
      rng.uniform_u64(static_cast<std::uint64_t>(lo),
                      static_cast<std::uint64_t>(std::max(lo, hi))));
}

FileCatalog draw_catalog(std::size_t num_files, Bytes min_bytes,
                         Bytes max_bytes, Rng& rng) {
  FilePoolConfig pool;
  pool.num_files = num_files;
  pool.min_bytes = std::max<Bytes>(1, min_bytes);
  pool.max_bytes = std::max(pool.min_bytes, max_bytes);
  pool.model = FileSizeModel::Uniform;
  return generate_file_pool(pool, rng);
}

}  // namespace

std::vector<SelectionItem> SelectInstance::items() const {
  std::vector<SelectionItem> out;
  out.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    out.push_back(SelectionItem{&requests[i], values[i]});
  }
  return out;
}

std::vector<std::uint32_t> SelectInstance::degrees() const {
  std::vector<std::uint32_t> out(catalog.count(), 0);
  for (const Request& r : requests) {
    for (FileId id : r.files) ++out[id];
  }
  return out;
}

SelectInstance generate_select_instance(const SelectGenConfig& config,
                                        Rng& rng) {
  SelectInstance inst;
  const std::size_t num_files =
      uniform_size(std::max<std::size_t>(1, config.min_files),
                   config.max_files, rng);
  inst.catalog = draw_catalog(num_files, config.min_file_bytes,
                              config.max_file_bytes, rng);

  const std::size_t num_requests =
      uniform_size(std::max<std::size_t>(1, config.min_requests),
                   config.max_requests, rng);
  for (std::size_t r = 0; r < num_requests; ++r) {
    const std::size_t k = uniform_size(
        1, std::min(config.max_bundle_files, num_files), rng);
    inst.requests.emplace_back(
        draw_bundle(k, num_files, config.hot_prob, config.hot_files, rng));
    inst.values.push_back(
        static_cast<double>(rng.uniform_u64(0, config.max_value)));
  }

  // Capacity anywhere from "nothing fits" to "everything fits".
  inst.capacity = rng.uniform_u64(0, inst.catalog.total_bytes());

  if (rng.bernoulli(config.free_file_prob)) {
    const std::size_t count = 1 + rng.index(std::min<std::size_t>(
                                      3, num_files));
    for (std::size_t idx : rng.sample_without_replacement(num_files, count)) {
      inst.free_files.push_back(static_cast<FileId>(idx));
    }
  }
  return inst;
}

SimInstance generate_sim_instance(const SimGenConfig& config, Rng& rng) {
  SimInstance inst;
  const std::size_t num_files =
      uniform_size(std::max<std::size_t>(1, config.min_files),
                   config.max_files, rng);
  inst.trace.catalog = draw_catalog(num_files, config.min_file_bytes,
                                    config.max_file_bytes, rng);

  // Distinct request pool with hot-set overlap.
  const std::size_t pool_size = uniform_size(
      std::max<std::size_t>(1, config.min_pool), config.max_pool, rng);
  std::vector<Request> pool;
  pool.reserve(pool_size);
  for (std::size_t r = 0; r < pool_size; ++r) {
    const std::size_t k = uniform_size(
        1, std::min(config.max_bundle_files, num_files), rng);
    pool.emplace_back(
        draw_bundle(k, num_files, config.hot_prob, config.hot_files, rng));
  }

  // Job stream: uniform or Zipf popularity over the pool.
  const std::size_t num_jobs =
      uniform_size(std::max<std::size_t>(1, config.min_jobs), config.max_jobs,
                   rng);
  inst.trace.jobs.reserve(num_jobs);

  // Mid-trace popularity drift: from the halfway point on, rotate the pool
  // indexing by half the pool so the popular bundles swap identity -- a
  // phase change for adaptive policies and the OPTgen window. The guard
  // short-circuits before touching the Rng when the knob is off, keeping
  // existing seeded streams byte-identical.
  std::size_t drift_at = num_jobs;
  std::size_t drift_shift = 0;
  if (config.drift_prob > 0 && rng.bernoulli(config.drift_prob)) {
    drift_at = num_jobs / 2;
    drift_shift = pool.size() / 2;
  }
  const auto pool_index = [&](std::size_t raw, std::size_t j) {
    return j >= drift_at ? (raw + drift_shift) % pool.size() : raw;
  };

  if (rng.bernoulli(config.zipf_prob)) {
    const double alpha =
        rng.uniform_double(0.5, std::max(0.5, config.zipf_alpha_max));
    ZipfSampler zipf(pool.size(), alpha);
    for (std::size_t j = 0; j < num_jobs; ++j) {
      inst.trace.jobs.push_back(pool[pool_index(zipf.sample(rng), j)]);
    }
  } else {
    for (std::size_t j = 0; j < num_jobs; ++j) {
      inst.trace.jobs.push_back(pool[pool_index(rng.index(pool.size()), j)]);
    }
  }

  // Cache capacity: usually large enough for the biggest bundle, sometimes
  // deliberately undersized to hit the unserviceable path.
  Bytes max_bundle = 1;
  for (const Request& r : pool) {
    max_bundle = std::max(max_bundle, inst.trace.catalog.request_bytes(r));
  }
  const Bytes total = inst.trace.catalog.total_bytes();
  if (rng.bernoulli(config.undersized_prob)) {
    inst.config.cache_bytes = rng.uniform_u64(1, max_bundle);
  } else {
    inst.config.cache_bytes = rng.uniform_u64(max_bundle, total);
  }

  inst.config.queue_length = uniform_size(
      1, std::max<std::size_t>(1, config.max_queue_length), rng);
  if (inst.config.queue_length > 1) {
    inst.config.queue_mode =
        rng.bernoulli(0.5) ? QueueMode::Batch : QueueMode::Sliding;
  }
  inst.config.warmup_jobs = uniform_size(0, config.max_warmup, rng);
  return inst;
}

Trace select_instance_to_trace(const SelectInstance& instance) {
  Trace trace;
  trace.catalog = instance.catalog;
  trace.jobs = instance.requests;
  trace.set_meta("kind", "select");
  trace.set_meta("capacity", std::to_string(instance.capacity));
  {
    std::ostringstream values;
    for (std::size_t i = 0; i < instance.values.size(); ++i) {
      if (i > 0) values << ' ';
      values << instance.values[i];
    }
    trace.set_meta("values", values.str());
  }
  if (!instance.free_files.empty()) {
    std::ostringstream free;
    for (std::size_t i = 0; i < instance.free_files.size(); ++i) {
      if (i > 0) free << ' ';
      free << instance.free_files[i];
    }
    trace.set_meta("free", free.str());
  }
  return trace;
}

SelectInstance select_instance_from_trace(const Trace& trace) {
  const std::string* kind = trace.meta_value("kind");
  if (kind == nullptr || *kind != "select")
    throw std::runtime_error(
        "select_instance_from_trace: trace meta 'kind' is not 'select'");
  const std::string* capacity = trace.meta_value("capacity");
  const std::string* values = trace.meta_value("values");
  if (capacity == nullptr || values == nullptr)
    throw std::runtime_error(
        "select_instance_from_trace: missing 'capacity' or 'values' meta");

  SelectInstance inst;
  inst.catalog = trace.catalog;
  inst.requests = trace.jobs;
  inst.capacity = std::stoull(*capacity);

  std::istringstream value_row(*values);
  double v = 0.0;
  while (value_row >> v) {
    if (v < 0.0)
      throw std::runtime_error(
          "select_instance_from_trace: negative value in 'values' meta");
    inst.values.push_back(v);
  }
  if (inst.values.size() != inst.requests.size())
    throw std::runtime_error(
        "select_instance_from_trace: 'values' count does not match jobs");

  if (const std::string* free = trace.meta_value("free")) {
    std::istringstream free_row(*free);
    std::uint64_t id = 0;
    while (free_row >> id) {
      if (id >= inst.catalog.count())
        throw std::runtime_error(
            "select_instance_from_trace: free file id out of range");
      inst.free_files.push_back(static_cast<FileId>(id));
    }
    std::sort(inst.free_files.begin(), inst.free_files.end());
  }
  return inst;
}

}  // namespace fbc::testing
