// Deterministic multi-client scheduling harness for BundleServer.
//
// The batched admission path must be *observationally identical* to the
// serial one: same grants, same hit flags, same evictions, same final
// cache state, for any interleaving of concurrent clients. Plain
// multi-threaded stress tests cannot pin that down -- the OS scheduler
// randomizes enqueue order, so two runs of the "same" test legitimately
// differ and a real batching bug hides in the noise.
//
// SchedSim removes the scheduler from the picture. A schedule is a flat,
// seed-generated list of client operations replayed in *waves*: admission
// is paused (BundleServer::set_admission_paused), each wave's acquires
// are enqueued one at a time -- the driver waits until a request is
// visibly queued (or already rejected) before issuing the next -- then
// admission resumes and the wave drains. Queue composition is therefore a
// pure function of the schedule, and since admission decisions are made
// under the server lock in queue order, the entire outcome (grant
// sequence, hits, evictions, final residency) is reproducible bit for
// bit from (schedule, ServiceConfig). Time is virtual throughout: the
// server runs at time_scale = 0, so simulated staging costs no wall
// clock and timeouts never race.
//
// That determinism is what makes the equivalence check meaningful:
// replaying one schedule at admission_batch = 1 and admission_batch = k
// must produce byte-identical SchedOutcomes, and when it does not, the
// failing schedule shrinks (delta-debugging over ops, then over bundle
// files) to a minimal reproducer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/types.hpp"
#include "service/server.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace fbc::testing {

/// One client-issued operation in a schedule.
struct SchedOp {
  std::uint32_t client = 0;
  /// Release the client's oldest held lease before acquiring (no-op when
  /// the client holds nothing at that point in the replay).
  bool release_oldest = false;
  Request request;

  bool operator==(const SchedOp&) const = default;
};

/// A self-contained schedule: catalog, cache size, and the op list.
struct SchedInstance {
  FileCatalog catalog;
  Bytes cache_bytes = 0;
  /// Acquires enqueued per admission wave (>= 1). Waves model "k clients
  /// arrive while the server is busy"; a wave of 1 degenerates to fully
  /// serial arrival.
  std::size_t wave = 4;
  std::vector<SchedOp> ops;
};

/// Knobs for generate_sched_instance(). All ranges are inclusive.
struct SchedGenConfig {
  std::size_t min_files = 4;
  std::size_t max_files = 24;
  std::size_t min_ops = 4;
  std::size_t max_ops = 40;
  std::size_t max_clients = 4;
  std::size_t max_bundle_files = 4;
  std::size_t max_wave = 6;
  Bytes min_file_bytes = 1;
  Bytes max_file_bytes = 64;
  /// Hot-set overlap (as in SelectGenConfig): concentrated bundle draws
  /// drive file sharing up, which is where batched eviction decisions can
  /// diverge from serial ones.
  double hot_prob = 0.6;
  std::size_t hot_files = 4;
  /// Probability an op releases the client's oldest lease first. Releases
  /// interleaved with queued acquires exercise the "space freed while the
  /// queue is non-empty" drain paths.
  double release_prob = 0.5;
};

/// Generates one random schedule; deterministic in the Rng state. The
/// cache is sized to fit the largest bundle but not the whole catalog,
/// so replays actually evict -- and never below feasible_cache_floor(),
/// so every wave resolves (see below).
[[nodiscard]] SchedInstance generate_sched_instance(
    const SchedGenConfig& config, Rng& rng);

/// Smallest capacity at which every admission in the replay is feasible
/// at its turn: the maximum over ops of (pinned union bytes at that op's
/// admission + its bundle bytes), simulating the exact wave replay order
/// (releases first, then admissions, both in op order). At or above this
/// floor no waiter ever needs a release from a *later* wave to fit, so a
/// wave's threads always join without timing out -- the property that
/// keeps replays deterministic (admission-timeout ordering is the one
/// wall-clock race the harness cannot pin).
[[nodiscard]] Bytes feasible_cache_floor(const SchedInstance& instance);

/// Outcome of one op, in schedule order.
struct GrantRecord {
  std::uint32_t client = 0;
  std::uint8_t status = 0;  ///< service::AcquireStatus
  std::uint8_t hit = 0;     ///< whole bundle was resident at admission

  bool operator==(const GrantRecord&) const = default;
};

/// Everything the equivalence check compares between two replays.
struct SchedOutcome {
  std::vector<GrantRecord> grants;  ///< one per op, schedule order
  std::vector<FileId> resident;     ///< sorted final resident set
  std::uint64_t requests = 0;       ///< grants (stats().requests)
  std::uint64_t request_hits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected_full = 0;

  bool operator==(const SchedOutcome&) const = default;
};

/// Renders an outcome as one line per grant plus the summary counters
/// (mismatch diagnostics and reproducer dumps).
[[nodiscard]] std::string to_string(const SchedOutcome& outcome);

/// Replays `instance` against a real BundleServer in deterministic waves
/// (see file comment). `config` supplies everything but cache_bytes
/// (taken from the instance); order is forced to Fifo and time_scale to 0
/// -- the two knobs that would reintroduce wall-clock dependence. All
/// leases still held at the end are released (clients in index order)
/// before the final cache state is captured. Any server-side audit
/// violation after the replay throws std::runtime_error.
[[nodiscard]] SchedOutcome run_schedule(const SchedInstance& instance,
                                        service::ServiceConfig config);

/// Replays `instance` serially (admission_batch = 1) and batched
/// (admission_batch = `batch`) and returns a human-readable description
/// of the first divergence, or std::nullopt when the outcomes are
/// identical. `config` seeds both replays.
[[nodiscard]] std::optional<std::string> check_batch_equivalence(
    const SchedInstance& instance, std::size_t batch,
    const service::ServiceConfig& config);

/// Shrinks a failing schedule to a local minimum of `pred` (true = still
/// failing): ops are dropped chunk-wise (halves down to singles), then
/// individual files are dropped from bundles. `pred(instance)` must be
/// true on entry.
using SchedPredicate = std::function<bool(const SchedInstance&)>;
[[nodiscard]] SchedInstance shrink_sched_instance(SchedInstance instance,
                                                  const SchedPredicate& pred);

/// Serializes a schedule as a v3 trace (kind=serve): one job per op, plus
/// clients/releases CSVs and wave/cache_bytes meta entries -- the fbcfuzz
/// reproducer format, replayable with fbcfuzz --replay.
[[nodiscard]] Trace sched_instance_to_trace(const SchedInstance& instance);

/// Parses a trace produced by sched_instance_to_trace(). Throws
/// std::runtime_error when required meta entries are missing/malformed.
[[nodiscard]] SchedInstance sched_instance_from_trace(const Trace& trace);

}  // namespace fbc::testing
