// Greedy reproducer shrinking (delta-debugging lite).
//
// Given a failing instance and a predicate that re-runs the oracle which
// caught it, the shrinkers repeatedly try structure-reducing edits --
// drop requests/jobs, drop files from bundles, halve file sizes, halve
// values -- and keep every edit after which the same failure still
// reproduces, until a fixpoint. The result is the small, human-readable
// counterexample that gets written out as a self-contained trace file.
//
// Jobs are removed chunk-wise first (halves, quarters, ... down to single
// jobs) so long traces collapse in O(n log n) predicate evaluations
// instead of O(n^2).
#pragma once

#include <functional>

#include "testing/instance_gen.hpp"

namespace fbc::testing {

/// Returns true when the candidate still exhibits the original failure.
using SelectPredicate = std::function<bool(const SelectInstance&)>;
using SimPredicate = std::function<bool(const SimInstance&)>;

/// Shrinks a failing select instance to a local minimum of `pred`.
/// `pred(instance)` must be true on entry.
[[nodiscard]] SelectInstance shrink_select_instance(SelectInstance instance,
                                                    const SelectPredicate& pred);

/// Shrinks a failing simulation input (jobs, files, sizes) to a local
/// minimum of `pred`. `pred(instance)` must be true on entry.
[[nodiscard]] SimInstance shrink_sim_instance(SimInstance instance,
                                              const SimPredicate& pred);

/// Removes catalog files no job references, remapping file ids densely.
/// Exposed for tests; the shrinkers call it after dropping bundle files.
void compact_unused_files(Trace& trace);

}  // namespace fbc::testing
