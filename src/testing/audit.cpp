#include "testing/audit.hpp"

#include <unordered_set>

namespace fbc::testing {

InvariantAuditor::InvariantAuditor(const FileCatalog& catalog,
                                   std::string subject)
    : catalog_(&catalog), subject_(std::move(subject)) {}

InvariantAuditor::Snapshot InvariantAuditor::snapshot(
    const CacheMetrics& metrics) noexcept {
  Snapshot s;
  s.jobs = metrics.jobs();
  s.request_hits = metrics.request_hits();
  s.files_requested = metrics.files_requested();
  s.file_hits = metrics.file_hits();
  s.bytes_requested = metrics.bytes_requested();
  s.bytes_missed = metrics.bytes_missed();
  s.evictions = metrics.evictions();
  s.bytes_evicted = metrics.bytes_evicted();
  s.bytes_prefetched = metrics.bytes_prefetched();
  s.unserviceable = metrics.unserviceable();
  return s;
}

void InvariantAuditor::report(const std::string& oracle,
                              const std::string& detail) {
  violations_.push_back(Violation{oracle, subject_, detail});
}

void InvariantAuditor::audit_cache_state(const DiskCache& cache,
                                         const std::string& where) {
  if (cache.used_bytes() > cache.capacity()) {
    report("sim.capacity", where + ": used " +
                               std::to_string(cache.used_bytes()) +
                               " exceeds capacity " +
                               std::to_string(cache.capacity()));
  }
  Bytes recomputed = 0;
  std::unordered_set<FileId> seen;
  for (FileId id : cache.resident_files()) {
    if (!catalog_->valid(id)) {
      report("sim.capacity",
             where + ": resident id " + std::to_string(id) +
                 " is not in the catalog");
      continue;
    }
    if (!seen.insert(id).second) {
      report("sim.capacity",
             where + ": file " + std::to_string(id) + " resident twice");
    }
    recomputed += catalog_->size_of(id);
    if (cache.pinned(id)) {
      report("sim.pin", where + ": file " + std::to_string(id) +
                            " left pinned between jobs");
    }
  }
  if (recomputed != cache.used_bytes()) {
    report("sim.capacity",
           where + ": used_bytes " + std::to_string(cache.used_bytes()) +
               " != recomputed resident sum " + std::to_string(recomputed));
  }
}

void InvariantAuditor::on_job_start(const Request& request,
                                    const DiskCache& cache) {
  used_before_ = cache.used_bytes();
  const std::vector<FileId> missing = cache.missing_files(request);
  missing_before_ = catalog_->bundle_bytes(missing);
  files_resident_before_ = request.size() - missing.size();
  job_evictions_ = 0;
  job_evicted_bytes_ = 0;
}

void InvariantAuditor::on_eviction(FileId id, const DiskCache& cache) {
  if (cache.contains(id)) {
    report("sim.eviction",
           "evicted file " + std::to_string(id) + " is still resident");
  }
  ++job_evictions_;
  ++total_evictions_;
  if (catalog_->valid(id)) job_evicted_bytes_ += catalog_->size_of(id);
}

void InvariantAuditor::on_job_serviced(const Request& request,
                                       const DiskCache& cache,
                                       const CacheMetrics& metrics) {
  ++jobs_;
  audit_cache_state(cache, "job " + std::to_string(jobs_));

  const Snapshot before = last_[&metrics];  // zero-initialized on first use
  const Snapshot now = snapshot(metrics);
  last_[&metrics] = now;
  const std::string job = "job " + std::to_string(jobs_);

  const Bytes request_bytes = catalog_->request_bytes(request);
  if (now.unserviceable != before.unserviceable) {
    // Skipped job: the only legal counter change is unserviceable += 1.
    if (now.unserviceable != before.unserviceable + 1) {
      report("sim.accounting", job + ": unserviceable jumped by more than 1");
    }
    if (request_bytes <= cache.capacity()) {
      report("sim.accounting",
             job + ": request of " + std::to_string(request_bytes) +
                 " bytes marked unserviceable but fits in capacity " +
                 std::to_string(cache.capacity()));
    }
    if (now.jobs != before.jobs || now.bytes_requested != before.bytes_requested ||
        now.evictions != before.evictions) {
      report("sim.accounting",
             job + ": unserviceable job also changed serviced-job counters");
    }
    if (cache.used_bytes() != used_before_ || job_evictions_ != 0) {
      report("sim.accounting",
             job + ": unserviceable job mutated the cache");
    }
    return;
  }

  if (now.jobs != before.jobs + 1) {
    report("sim.accounting", job + ": jobs counter advanced by " +
                                 std::to_string(now.jobs - before.jobs));
  }
  if (now.bytes_requested - before.bytes_requested != request_bytes) {
    report("sim.accounting",
           job + ": bytes_requested delta " +
               std::to_string(now.bytes_requested - before.bytes_requested) +
               " != bundle size " + std::to_string(request_bytes));
  }
  if (now.bytes_missed - before.bytes_missed != missing_before_) {
    report("sim.accounting",
           job + ": bytes_missed delta " +
               std::to_string(now.bytes_missed - before.bytes_missed) +
               " != missing bytes observed before service " +
               std::to_string(missing_before_));
  }
  if (now.files_requested - before.files_requested != request.size()) {
    report("sim.accounting", job + ": files_requested delta != bundle count");
  }
  if (now.file_hits - before.file_hits != files_resident_before_) {
    report("sim.accounting",
           job + ": file_hits delta " +
               std::to_string(now.file_hits - before.file_hits) +
               " != resident file count observed before service " +
               std::to_string(files_resident_before_));
  }
  const std::uint64_t expected_hit = missing_before_ == 0 ? 1 : 0;
  if (now.request_hits - before.request_hits != expected_hit) {
    report("sim.accounting", job + ": request_hits delta wrong (missing " +
                                 std::to_string(missing_before_) +
                                 " bytes before service)");
  }
  if (now.evictions - before.evictions != job_evictions_ ||
      now.bytes_evicted - before.bytes_evicted != job_evicted_bytes_) {
    report("sim.accounting",
           job + ": eviction counters disagree with observed evictions (" +
               std::to_string(job_evictions_) + " victims, " +
               std::to_string(job_evicted_bytes_) + " bytes)");
  }

  // Residency: the whole bundle must be in the cache once the job is done.
  for (FileId id : request.files) {
    if (!cache.contains(id)) {
      report("sim.residency", job + ": serviced bundle file " +
                                  std::to_string(id) + " not resident");
      break;
    }
  }

  // Byte conservation: loads (demand + prefetch) minus evictions must
  // explain the used-bytes change exactly.
  const Bytes prefetched = now.bytes_prefetched - before.bytes_prefetched;
  if (cache.used_bytes() + job_evicted_bytes_ !=
      used_before_ + missing_before_ + prefetched) {
    report("sim.accounting",
           job + ": byte conservation violated (used " +
               std::to_string(used_before_) + " -> " +
               std::to_string(cache.used_bytes()) + ", missing " +
               std::to_string(missing_before_) + ", prefetched " +
               std::to_string(prefetched) + ", evicted " +
               std::to_string(job_evicted_bytes_) + ")");
  }
}

void InvariantAuditor::on_run_complete(const DiskCache& cache,
                                       const SimulationResult& result) {
  audit_cache_state(cache, "run end");
  if (result.victims != total_evictions_) {
    report("sim.accounting",
           "run end: result.victims " + std::to_string(result.victims) +
               " != observed evictions " + std::to_string(total_evictions_));
  }
}

}  // namespace fbc::testing
