#include "testing/oracles.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>
#include <sstream>

#include "core/bounds.hpp"
#include "core/optgen.hpp"
#include "core/registry.hpp"
#include "testing/optgen_reference.hpp"

namespace fbc::testing {
namespace {

constexpr SelectVariant kVariants[] = {SelectVariant::Basic,
                                       SelectVariant::Resort,
                                       SelectVariant::Seeded1,
                                       SelectVariant::Seeded2};

std::string fmt(double v) {
  std::ostringstream oss;
  oss << v;
  return oss.str();
}

/// Structural checks shared by every variant (and the exact solver).
/// `check_single_override` is off for a truncated exact solve, whose
/// incumbent legitimately may not have reached the step-3 comparison.
void check_structure(const SelectInstance& inst,
                     std::span<const SelectionItem> items,
                     std::span<const FileId> free_sorted,
                     const SelectionResult& result, const std::string& subject,
                     std::vector<Violation>& out,
                     bool check_single_override = true) {
  std::set<std::size_t> unique(result.chosen.begin(), result.chosen.end());
  if (unique.size() != result.chosen.size()) {
    out.push_back({"select.structure", subject, "chosen indices repeat"});
  }
  double value_sum = 0.0;
  for (std::size_t idx : result.chosen) {
    if (idx >= items.size()) {
      out.push_back({"select.structure", subject,
                     "chosen index " + std::to_string(idx) + " out of range"});
      return;
    }
    if (items[idx].value <= 0.0) {
      out.push_back({"select.structure", subject,
                     "worthless item " + std::to_string(idx) + " chosen"});
    }
    value_sum += items[idx].value;
  }
  if (std::abs(result.total_value - value_sum) > 1e-9) {
    out.push_back({"select.structure", subject,
                   "total_value " + fmt(result.total_value) +
                       " != recomputed sum " + fmt(value_sum)});
  }

  std::set<FileId> expected;
  for (std::size_t idx : result.chosen) {
    for (FileId id : items[idx].request->files) expected.insert(id);
  }
  for (FileId id : free_sorted) expected.erase(id);
  const std::vector<FileId> expected_sorted(expected.begin(), expected.end());
  if (result.files != expected_sorted) {
    out.push_back({"select.structure", subject,
                   "reported files are not the union of chosen bundles minus "
                   "the free set"});
  }
  if (result.file_bytes != inst.catalog.bundle_bytes(result.files)) {
    out.push_back({"select.structure", subject,
                   "file_bytes does not match the reported file set"});
  }
  if (result.file_bytes > inst.capacity) {
    out.push_back({"select.feasibility", subject,
                   "union " + std::to_string(result.file_bytes) +
                       " bytes exceeds budget " +
                       std::to_string(inst.capacity)});
  }

  // Algorithm 1 step 3: at least the best single request that fits alone.
  if (!check_single_override) return;
  double best_single = 0.0;
  for (const SelectionItem& item : items) {
    Bytes alone = 0;
    for (FileId id : item.request->files) {
      if (!std::binary_search(free_sorted.begin(), free_sorted.end(), id)) {
        alone += inst.catalog.size_of(id);
      }
    }
    if (alone <= inst.capacity) best_single = std::max(best_single, item.value);
  }
  if (result.total_value + 1e-9 < best_single) {
    out.push_back({"select.single-override", subject,
                   "value " + fmt(result.total_value) +
                       " below the best single fitting request " +
                       fmt(best_single)});
  }
}

}  // namespace

bool same_failure(const Violation& a, const Violation& b) {
  return a.oracle == b.oracle && a.subject == b.subject;
}

bool contains_failure(const std::vector<Violation>& violations,
                      const Violation& target) {
  return std::any_of(
      violations.begin(), violations.end(),
      [&](const Violation& v) { return same_failure(v, target); });
}

std::vector<Violation> check_select_instance(const SelectInstance& instance,
                                             std::uint64_t exact_node_budget,
                                             SelectOracleStats* stats) {
  std::vector<Violation> out;
  const std::vector<SelectionItem> items = instance.items();
  const std::vector<std::uint32_t> degrees = instance.degrees();
  OptCacheSelect selector(instance.catalog, degrees);

  // Pass 1: structural/feasibility oracles under the declared free files.
  for (SelectVariant variant : kVariants) {
    const SelectionResult result = selector.select(
        items, instance.capacity, variant, instance.free_files);
    check_structure(instance, items, instance.free_files, result,
                    to_string(variant), out);
  }

  // Pass 2: differential oracles against the exact optimum. exact_select
  // has no free-file support, so this pass runs without free files.
  ExactSelectStats exact_stats;
  const SelectionResult exact = exact_select(
      items, instance.catalog, instance.capacity, exact_node_budget,
      &exact_stats);
  if (stats != nullptr) {
    stats->exact_truncated = exact_stats.truncated;
    stats->exact_nodes = exact_stats.nodes;
  }
  check_structure(instance, items, {}, exact, "exact", out,
                  /*check_single_override=*/!exact_stats.truncated);

  const std::uint32_t d = max_file_degree(items);
  const double eps = 1e-9 * std::max(1.0, exact.total_value);
  double value_of[4] = {};
  for (std::size_t v = 0; v < 4; ++v) {
    const SelectionResult result =
        selector.select(items, instance.capacity, kVariants[v], {});
    check_structure(instance, items, {}, result, to_string(kVariants[v]), out);
    value_of[v] = result.total_value;

    if (!exact_stats.truncated && result.total_value > exact.total_value + eps) {
      // The greedy can never beat a true optimum; exact_select is broken.
      out.push_back({"select.exact-dominated", "exact",
                     to_string(kVariants[v]) + " found " +
                         fmt(result.total_value) + " > exact optimum " +
                         fmt(exact.total_value)});
    }
    if (!exact_stats.truncated) {
      const double factor = kVariants[v] == SelectVariant::Seeded2
                                ? seeded_bound_factor(d)
                                : greedy_bound_factor(d);
      if (result.total_value + eps < factor * exact.total_value) {
        out.push_back({"select.bound", to_string(kVariants[v]),
                       "value " + fmt(result.total_value) +
                           " below Theorem 4.1 floor " +
                           fmt(factor * exact.total_value) + " (d=" +
                           std::to_string(d) + ", exact=" +
                           fmt(exact.total_value) + ")"});
      }
    }
  }

  // Dominance: the seeded enumerations are supersets of the plain greedy.
  if (value_of[2] + 1e-9 < value_of[1]) {
    out.push_back({"select.dominance", "seeded1",
                   "seeded1 " + fmt(value_of[2]) + " below resort " +
                       fmt(value_of[1])});
  }
  if (value_of[3] + 1e-9 < value_of[2]) {
    out.push_back({"select.dominance", "seeded2",
                   "seeded2 " + fmt(value_of[3]) + " below seeded1 " +
                       fmt(value_of[2])});
  }
  return out;
}

namespace {

/// Deliberately broken wrapper: drops the last victim whenever the inner
/// policy chose more than one, under-freeing space. Exists so the fuzzer
/// can prove to itself that capacity bugs are caught and shrunk.
class UnderfreePolicy : public ReplacementPolicy {
 public:
  explicit UnderfreePolicy(PolicyPtr inner) : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override {
    return "underfree:" + inner_->name();
  }
  void on_job_arrival(const Request& request, const DiskCache& cache) override {
    inner_->on_job_arrival(request, cache);
  }
  void on_request_hit(const Request& request, const DiskCache& cache) override {
    inner_->on_request_hit(request, cache);
  }
  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override {
    std::vector<FileId> victims =
        inner_->select_victims(request, bytes_needed, cache);
    if (victims.size() > 1) victims.pop_back();  // the injected bug
    return victims;
  }
  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override {
    inner_->on_files_loaded(request, loaded, cache);
  }
  void on_file_evicted(FileId id) override { inner_->on_file_evicted(id); }
  void on_prefetched(std::span<const FileId> loaded,
                     const DiskCache& cache) override {
    inner_->on_prefetched(loaded, cache);
  }
  [[nodiscard]] std::vector<FileId> prefetch(const Request& request,
                                             const DiskCache& cache) override {
    return inner_->prefetch(request, cache);
  }
  [[nodiscard]] std::size_t choose_next(std::span<const Request> queue,
                                        const DiskCache& cache) override {
    return inner_->choose_next(queue, cache);
  }
  [[nodiscard]] std::size_t choose_next(std::span<const Request> queue,
                                        std::span<const double> ages,
                                        const DiskCache& cache) override {
    return inner_->choose_next(queue, ages, cache);
  }
  [[nodiscard]] const SelectionCost* selection_cost() const override {
    return inner_->selection_cost();
  }
  void reset() override { inner_->reset(); }

 private:
  PolicyPtr inner_;
};

/// Lock-step dual-engine adapter (see make_engine_diff_policy).
class EngineDiffPolicy : public ReplacementPolicy {
 public:
  EngineDiffPolicy(std::unique_ptr<OptFileBundlePolicy> reference,
                   std::unique_ptr<OptFileBundlePolicy> incremental)
      : ref_(std::move(reference)), inc_(std::move(incremental)) {}

  [[nodiscard]] std::string name() const override {
    return "enginediff:" + ref_->name();
  }
  void on_job_arrival(const Request& request, const DiskCache& cache) override {
    ref_->on_job_arrival(request, cache);
    inc_->on_job_arrival(request, cache);
  }
  void on_request_hit(const Request& request, const DiskCache& cache) override {
    ref_->on_request_hit(request, cache);
    inc_->on_request_hit(request, cache);
  }
  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override {
    const std::vector<FileId> victims_ref =
        ref_->select_victims(request, bytes_needed, cache);
    const std::vector<FileId> victims_inc =
        inc_->select_victims(request, bytes_needed, cache);
    compare_decision(request, victims_ref, victims_inc);
    return victims_ref;
  }
  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override {
    ref_->on_files_loaded(request, loaded, cache);
    inc_->on_files_loaded(request, loaded, cache);
  }
  void on_file_evicted(FileId id) override {
    ref_->on_file_evicted(id);
    inc_->on_file_evicted(id);
  }
  void on_prefetched(std::span<const FileId> loaded,
                     const DiskCache& cache) override {
    ref_->on_prefetched(loaded, cache);
    inc_->on_prefetched(loaded, cache);
  }
  [[nodiscard]] std::vector<FileId> prefetch(const Request& request,
                                             const DiskCache& cache) override {
    const std::vector<FileId> pf_ref = ref_->prefetch(request, cache);
    const std::vector<FileId> pf_inc = inc_->prefetch(request, cache);
    if (pf_ref != pf_inc) {
      diverge("prefetch lists differ for " + request.to_string());
    }
    return pf_ref;
  }
  [[nodiscard]] std::size_t choose_next(std::span<const Request> queue,
                                        const DiskCache& cache) override {
    const std::size_t pick_ref = ref_->choose_next(queue, cache);
    const std::size_t pick_inc = inc_->choose_next(queue, cache);
    if (pick_ref != pick_inc) diverge("choose_next picks differ");
    return pick_ref;
  }
  [[nodiscard]] std::size_t choose_next(std::span<const Request> queue,
                                        std::span<const double> ages,
                                        const DiskCache& cache) override {
    const std::size_t pick_ref = ref_->choose_next(queue, ages, cache);
    const std::size_t pick_inc = inc_->choose_next(queue, ages, cache);
    if (pick_ref != pick_inc) diverge("choose_next picks differ (aged)");
    return pick_ref;
  }
  [[nodiscard]] const SelectionCost* selection_cost() const override {
    // Charge the reference engine's effort to the metrics; the adapter is
    // a correctness harness, not a perf subject.
    return ref_->selection_cost();
  }
  void reset() override {
    ref_->reset();
    inc_->reset();
  }

 private:
  [[noreturn]] void diverge(const std::string& what) const {
    throw EngineDivergence(ref_->name() + " vs " + inc_->name() + ": " + what);
  }

  void compare_decision(const Request& request,
                        std::span<const FileId> victims_ref,
                        std::span<const FileId> victims_inc) const {
    const SelectionResult& a = ref_->last_selection();
    const SelectionResult& b = inc_->last_selection();
    std::string what;
    if (ref_->last_candidate_count() != inc_->last_candidate_count()) {
      what = "candidate counts differ (" +
             std::to_string(ref_->last_candidate_count()) + " vs " +
             std::to_string(inc_->last_candidate_count()) + ")";
    } else if (a.chosen != b.chosen) {
      what = "chosen sets differ (" + std::to_string(a.chosen.size()) +
             " vs " + std::to_string(b.chosen.size()) + " items)";
    } else if (a.files != b.files) {
      what = "kept file sets differ";
    } else if (a.file_bytes != b.file_bytes) {
      what = "kept file bytes differ";
    } else if (std::bit_cast<std::uint64_t>(a.total_value) !=
               std::bit_cast<std::uint64_t>(b.total_value)) {
      // Bitwise, not epsilon: the engines promise identical arithmetic.
      what = "total values differ (" + fmt(a.total_value) + " vs " +
             fmt(b.total_value) + ")";
    } else if (a.single_request_override != b.single_request_override) {
      what = "single-request overrides differ";
    } else if (!std::equal(victims_ref.begin(), victims_ref.end(),
                           victims_inc.begin(), victims_inc.end())) {
      what = "victim lists differ (" + std::to_string(victims_ref.size()) +
             " vs " + std::to_string(victims_inc.size()) + " files)";
    } else {
      return;
    }
    diverge("decision for " + request.to_string() + ": " + what);
  }

  std::unique_ptr<OptFileBundlePolicy> ref_;
  std::unique_ptr<OptFileBundlePolicy> inc_;
};

std::unique_ptr<OptFileBundlePolicy> make_optfb_with_engine(
    const std::string& policy_name, const PolicyContext& context,
    SelectEngine engine) {
  PolicyContext engine_context = context;
  engine_context.select_engine = engine;
  PolicyPtr policy = make_policy(policy_name, engine_context);
  auto* optfb = dynamic_cast<OptFileBundlePolicy*>(policy.get());
  if (optfb == nullptr) {
    throw std::invalid_argument("enginediff: '" + policy_name +
                                "' is not an OptFileBundle policy");
  }
  (void)policy.release();
  return std::unique_ptr<OptFileBundlePolicy>(optfb);
}

PolicyPtr make_checked_policy(const std::string& policy_name,
                              const PolicyContext& context) {
  constexpr std::string_view kUnderfree = "underfree:";
  constexpr std::string_view kEngineDiff = "enginediff:";
  if (policy_name.rfind(kUnderfree, 0) == 0) {
    return make_underfree_policy(make_policy(
        policy_name.substr(kUnderfree.size()), context));
  }
  if (policy_name.rfind(kEngineDiff, 0) == 0) {
    const std::string inner = policy_name.substr(kEngineDiff.size());
    return make_engine_diff_policy(
        make_optfb_with_engine(inner, context, SelectEngine::Reference),
        make_optfb_with_engine(inner, context, SelectEngine::Incremental));
  }
  return make_policy(policy_name, context);
}

}  // namespace

PolicyPtr make_underfree_policy(PolicyPtr inner) {
  return std::make_unique<UnderfreePolicy>(std::move(inner));
}

PolicyPtr make_shadow_policy(const std::string& policy_name,
                             const PolicyContext& context) {
  return make_checked_policy(policy_name, context);
}

PolicyPtr make_engine_diff_policy(
    std::unique_ptr<OptFileBundlePolicy> reference,
    std::unique_ptr<OptFileBundlePolicy> incremental) {
  return std::make_unique<EngineDiffPolicy>(std::move(reference),
                                            std::move(incremental));
}

PolicyPtr make_engine_diff_policy(const FileCatalog& catalog,
                                  OptFileBundleConfig config) {
  config.engine = SelectEngine::Reference;
  auto reference = std::make_unique<OptFileBundlePolicy>(catalog, config);
  config.engine = SelectEngine::Incremental;
  auto incremental = std::make_unique<OptFileBundlePolicy>(catalog, config);
  return make_engine_diff_policy(std::move(reference), std::move(incremental));
}

std::vector<Violation> check_engines_agree(const Trace& trace,
                                           const SimulatorConfig& config,
                                           const std::string& policy_name,
                                           std::uint64_t seed) {
  return check_simulation(trace, config, "enginediff:" + policy_name, seed);
}

std::vector<Violation> check_simulation(const Trace& trace,
                                        const SimulatorConfig& config,
                                        const std::string& policy_name,
                                        std::uint64_t seed) {
  std::vector<Violation> out;
  PolicyContext context;
  context.catalog = &trace.catalog;
  context.jobs = trace.jobs;
  context.seed = seed;

  PolicyPtr policy;
  try {
    policy = make_checked_policy(policy_name, context);
  } catch (const std::exception& e) {
    out.push_back({"sim.setup", policy_name, e.what()});
    return out;
  }

  InvariantAuditor auditor(trace.catalog, policy_name);
  try {
    Simulator sim(config, trace.catalog, *policy);
    sim.set_observer(&auditor);
    (void)sim.run(trace.jobs);
  } catch (const EngineDivergence& e) {
    out.push_back({"engine.divergence", policy_name, e.what()});
  } catch (const PolicyContractViolation& e) {
    out.push_back({"sim.policy-contract", policy_name, e.what()});
  } catch (const std::exception& e) {
    out.push_back({"sim.exception", policy_name, e.what()});
  }
  out.insert(out.end(), auditor.violations().begin(),
             auditor.violations().end());
  return out;
}

namespace {

/// Policies whose hits the *demand* bound provably dominates: every
/// registered policy that never prefetches. The prefetch-capable ones
/// (optfb-full / optfb-window step-3 prefetching, clairvoyant lookahead)
/// are only covered by the reuse bound.
bool demand_dominated(const std::string& policy_name) {
  // Strip the testing prefixes; the adapters forward the inner policy's
  // prefetch behaviour unchanged.
  std::string name = policy_name;
  const std::size_t colon = name.rfind(':');
  if (colon != std::string::npos) name = name.substr(colon + 1);
  return name != "optfb-full" && name != "optfb-window" && name != "lookahead";
}

std::string verdict_to_string(const OptgenVerdict& v) {
  std::ostringstream oss;
  oss << "{serviced=" << v.serviced << " opt=" << v.opt_hit
      << " demand=" << v.demand_feasible << " reuse=" << v.reuse_feasible
      << " truncated=" << v.truncated << "}";
  return oss.str();
}

void diff_stat(const std::string& field, std::uint64_t incremental,
               std::uint64_t reference, std::vector<Violation>& out) {
  if (incremental == reference) return;
  out.push_back({"optgen.divergence", "stats",
                 field + ": incremental " + std::to_string(incremental) +
                     " vs reference " + std::to_string(reference)});
}

/// Density sums must agree *bitwise*: both implementations perform the
/// identical floating-point operation sequence.
void diff_stat_bits(const std::string& field, double incremental,
                    double reference, std::vector<Violation>& out) {
  if (std::bit_cast<std::uint64_t>(incremental) ==
      std::bit_cast<std::uint64_t>(reference)) {
    return;
  }
  out.push_back({"optgen.divergence", "stats",
                 field + ": incremental " + fmt(incremental) +
                     " vs reference " + fmt(reference)});
}

}  // namespace

std::vector<Violation> check_optgen(const Trace& trace,
                                    const OptgenCheckConfig& config) {
  std::vector<Violation> out;
  const OptgenConfig oracle_config{config.cache_bytes, config.window_quanta};

  // Incremental replay, collecting per-job verdicts.
  BundleOPTgen oracle(trace.catalog, oracle_config);
  std::vector<OptgenVerdict> verdicts;
  verdicts.reserve(trace.jobs.size());
  for (const Request& job : trace.jobs) verdicts.push_back(oracle.observe(job));
  const OptgenStats& stats = oracle.stats();

  // Brute-force reference replay.
  const OptgenReferenceResult ref =
      reference_optgen(trace.catalog, trace.jobs, oracle_config);

  // Oracle 1: incremental vs reference divergence -- verdicts, final
  // statistics (minus the implementation-specific cost counter) and every
  // in-window occupancy must agree exactly.
  for (std::size_t t = 0; t < trace.jobs.size(); ++t) {
    if (verdicts[t] != ref.verdicts[t]) {
      out.push_back({"optgen.divergence", "verdict",
                     "job " + std::to_string(t) + ": incremental " +
                         verdict_to_string(verdicts[t]) + " vs reference " +
                         verdict_to_string(ref.verdicts[t])});
      break;  // later verdicts diverge transitively; report the first
    }
  }
  diff_stat("jobs", stats.jobs, ref.stats.jobs, out);
  diff_stat("serviced", stats.serviced, ref.stats.serviced, out);
  diff_stat("opt_hits", stats.opt_hits, ref.stats.opt_hits, out);
  diff_stat("demand_hits", stats.demand_hits, ref.stats.demand_hits, out);
  diff_stat("reuse_hits", stats.reuse_hits, ref.stats.reuse_hits, out);
  diff_stat("opt_hit_bytes", stats.opt_hit_bytes, ref.stats.opt_hit_bytes,
            out);
  diff_stat("demand_hit_bytes", stats.demand_hit_bytes,
            ref.stats.demand_hit_bytes, out);
  diff_stat("reuse_hit_bytes", stats.reuse_hit_bytes,
            ref.stats.reuse_hit_bytes, out);
  diff_stat_bits("opt_density_value", stats.opt_density_value,
                 ref.stats.opt_density_value, out);
  diff_stat_bits("demand_density_value", stats.demand_density_value,
                 ref.stats.demand_density_value, out);
  diff_stat_bits("reuse_density_value", stats.reuse_density_value,
                 ref.stats.reuse_density_value, out);
  diff_stat("truncated_intervals", stats.truncated_intervals,
            ref.stats.truncated_intervals, out);
  diff_stat("peak_occupancy", stats.peak_occupancy, ref.stats.peak_occupancy,
            out);
  const std::uint64_t n = trace.jobs.size();
  const std::uint64_t wstart =
      n >= config.window_quanta ? n - config.window_quanta : 0;
  for (std::uint64_t u = wstart; u < n; ++u) {
    const auto s = static_cast<std::size_t>(u);
    const Bytes expect = ref.forced[s] + ref.committed[s];
    if (oracle.occupancy_at(u) != expect) {
      out.push_back({"optgen.divergence", "occupancy",
                     "quantum " + std::to_string(u) + ": incremental " +
                         std::to_string(oracle.occupancy_at(u)) +
                         " vs reference " + std::to_string(expect)});
      break;
    }
  }

  // Oracle 2: the committed schedule is feasible -- occupancy never
  // exceeds capacity at any quantum (checked against the reference's
  // full-length, unclipped occupancy vectors).
  for (std::size_t u = 0; u < ref.forced.size(); ++u) {
    if (ref.forced[u] + ref.committed[u] > config.cache_bytes) {
      out.push_back({"optgen.capacity", "optgen",
                     "quantum " + std::to_string(u) + ": occupancy " +
                         std::to_string(ref.forced[u] + ref.committed[u]) +
                         " exceeds capacity " +
                         std::to_string(config.cache_bytes)});
      break;
    }
  }

  // Oracle 3: the per-verdict nesting chain.
  for (std::size_t t = 0; t < verdicts.size(); ++t) {
    const OptgenVerdict& v = verdicts[t];
    const bool chain_ok = (!v.opt_hit || v.demand_feasible) &&
                          (!v.demand_feasible || v.reuse_feasible) &&
                          (!v.reuse_feasible || v.serviced);
    if (!chain_ok) {
      out.push_back({"optgen.chain", "optgen",
                     "job " + std::to_string(t) + ": broken nesting " +
                         verdict_to_string(v)});
      break;
    }
  }

  // Oracle 4: the clairvoyant repeat bound (core/bounds) dominates every
  // oracle level.
  const RepeatBound clair =
      clairvoyant_upper_bound(trace.catalog, trace.jobs, config.cache_bytes);
  if (stats.reuse_hits > clair.hits || stats.demand_hits > clair.hits ||
      stats.opt_hits > clair.hits) {
    out.push_back(
        {"optgen.lookahead", "optgen",
         "hits opt/demand/reuse " + std::to_string(stats.opt_hits) + "/" +
             std::to_string(stats.demand_hits) + "/" +
             std::to_string(stats.reuse_hits) + " exceed clairvoyant bound " +
             std::to_string(clair.hits)});
  }
  if (stats.reuse_hit_bytes > clair.hit_bytes) {
    out.push_back({"optgen.lookahead", "optgen",
                   "reuse hit bytes " + std::to_string(stats.reuse_hit_bytes) +
                       " exceed clairvoyant bound " +
                       std::to_string(clair.hit_bytes)});
  }

  // Oracle 5: dominance over every replayed online policy. The replays
  // run FCFS with no warm-up, matching the oracle's service model.
  SimulatorConfig sim_config;
  sim_config.cache_bytes = config.cache_bytes;
  sim_config.queue_length = 1;
  sim_config.warmup_jobs = 0;
  PolicyContext context;
  context.catalog = &trace.catalog;
  context.jobs = trace.jobs;
  context.seed = config.seed;
  for (const std::string& policy_name : config.policies) {
    PolicyPtr policy;
    try {
      policy = make_checked_policy(policy_name, context);
    } catch (const std::exception& e) {
      out.push_back({"optgen.sim", policy_name, e.what()});
      continue;
    }
    SimulationResult result;
    try {
      result = simulate(sim_config, trace.catalog, *policy, trace.jobs);
    } catch (const std::exception& e) {
      out.push_back({"optgen.sim", policy_name, e.what()});
      continue;
    }
    const std::uint64_t hits = result.metrics.request_hits();
    if (hits > stats.reuse_hits) {
      out.push_back({"optgen.dominance", policy_name,
                     "policy hits " + std::to_string(hits) +
                         " exceed the reuse bound " +
                         std::to_string(stats.reuse_hits)});
    } else if (demand_dominated(policy_name) && hits > stats.demand_hits) {
      out.push_back({"optgen.dominance", policy_name,
                     "policy hits " + std::to_string(hits) +
                         " exceed the demand bound " +
                         std::to_string(stats.demand_hits)});
    }
  }
  return out;
}

}  // namespace fbc::testing
