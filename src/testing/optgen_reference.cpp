#include "testing/optgen_reference.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace fbc::testing {
namespace {

constexpr std::uint64_t kNever = ~0ULL;

/// Last job index < t whose bundle contains `f` (any job), or kNever.
std::uint64_t scan_last_any(std::span<const Request> jobs, std::size_t t,
                            FileId f, OptgenStats& stats) {
  for (std::size_t j = t; j-- > 0;) {
    ++stats.slices_scanned;
    if (jobs[j].contains(f)) return j;
  }
  return kNever;
}

/// Last serviced job index < t whose bundle contains `f`, or kNever.
std::uint64_t scan_last_serviced(std::span<const Request> jobs,
                                 std::span<const char> serviced, std::size_t t,
                                 FileId f, OptgenStats& stats) {
  for (std::size_t j = t; j-- > 0;) {
    ++stats.slices_scanned;
    if (serviced[j] != 0 && jobs[j].contains(f)) return j;
  }
  return kNever;
}

}  // namespace

OptgenReferenceResult reference_optgen(const FileCatalog& catalog,
                                       std::span<const Request> jobs,
                                       const OptgenConfig& config) {
  if (config.capacity == 0) {
    throw std::invalid_argument("reference_optgen: capacity must be > 0");
  }
  if (config.window_quanta == 0) {
    throw std::invalid_argument("reference_optgen: window_quanta must be > 0");
  }
  OptgenReferenceResult result;
  result.verdicts.reserve(jobs.size());
  result.forced.assign(jobs.size(), 0);
  result.committed.assign(jobs.size(), 0);
  std::vector<char> serviced_flags(jobs.size(), 0);
  OptgenStats& stats = result.stats;
  const Bytes capacity = config.capacity;
  const std::uint64_t window = config.window_quanta;

  for (std::size_t t = 0; t < jobs.size(); ++t) {
    const Request& request = jobs[t];
    const Bytes bundle = catalog.request_bytes(request);
    const std::uint64_t wstart = t >= window ? t - window : 0;

    OptgenVerdict verdict;
    verdict.serviced = bundle <= capacity;

    // Last serviced job before t, by backward scan.
    std::uint64_t last_serviced_job = kNever;
    for (std::size_t j = t; j-- > 0;) {
      ++stats.slices_scanned;
      if (serviced_flags[j] != 0) {
        last_serviced_job = j;
        break;
      }
    }

    if (request.empty()) {
      verdict.opt_hit = true;
      verdict.demand_feasible = true;
      verdict.reuse_feasible = true;
    } else if (verdict.serviced) {
      bool all_seen = true;
      for (FileId f : request.files) {
        if (scan_last_any(jobs, t, f, stats) == kNever) {
          all_seen = false;
          break;
        }
      }
      if (all_seen && last_serviced_job != kNever) {
        if (last_serviced_job < wstart) {
          verdict.truncated = true;
          verdict.reuse_feasible = true;
        } else {
          Bytes union_bytes = bundle;
          for (FileId f :
               jobs[static_cast<std::size_t>(last_serviced_job)].files) {
            if (!request.contains(f)) union_bytes += catalog.size_of(f);
          }
          verdict.reuse_feasible = union_bytes <= capacity;
        }
      }

      if (verdict.reuse_feasible) {
        bool all_prev_serviced = true;
        std::vector<std::uint64_t> prev(request.files.size(), kNever);
        for (std::size_t i = 0; i < request.files.size(); ++i) {
          prev[i] = scan_last_serviced(jobs, serviced_flags, t,
                                       request.files[i], stats);
          if (prev[i] == kNever) {
            all_prev_serviced = false;
            break;
          }
        }
        if (all_prev_serviced) {
          // Per-quantum gap demand over the (window-clipped) reuse gaps.
          std::vector<Bytes> need(t, 0);
          for (std::size_t i = 0; i < request.files.size(); ++i) {
            std::uint64_t lo = prev[i] + 1;
            if (lo < wstart) {
              verdict.truncated = true;
              lo = wstart;
            }
            const Bytes size = catalog.size_of(request.files[i]);
            for (std::uint64_t u = lo; u < t; ++u) {
              need[static_cast<std::size_t>(u)] += size;
            }
          }
          bool demand_ok = true;
          for (std::uint64_t u = wstart; u < t; ++u) {
            const auto s = static_cast<std::size_t>(u);
            if (need[s] == 0) continue;
            if (result.forced[s] + need[s] > capacity) {
              demand_ok = false;
              break;
            }
          }
          verdict.demand_feasible = demand_ok;
          if (demand_ok) {
            bool opt_ok = true;
            for (std::uint64_t u = wstart; u < t; ++u) {
              const auto s = static_cast<std::size_t>(u);
              if (need[s] == 0) continue;
              if (result.forced[s] + result.committed[s] + need[s] >
                  capacity) {
                opt_ok = false;
                break;
              }
            }
            verdict.opt_hit = opt_ok;
            if (opt_ok) {
              for (std::uint64_t u = wstart; u < t; ++u) {
                const auto s = static_cast<std::size_t>(u);
                if (need[s] == 0) continue;
                result.committed[s] += need[s];
                stats.peak_occupancy =
                    std::max(stats.peak_occupancy,
                             result.forced[s] + result.committed[s]);
              }
            }
          }
        }
      }
    }

    result.forced[t] = verdict.serviced ? bundle : 0;
    serviced_flags[t] = verdict.serviced ? 1 : 0;
    stats.peak_occupancy = std::max(stats.peak_occupancy, result.forced[t]);

    ++stats.jobs;
    if (verdict.serviced) ++stats.serviced;
    if (verdict.truncated) ++stats.truncated_intervals;
    if (verdict.reuse_feasible) {
      // Online degree d(f): occurrences in jobs[0..t] inclusive.
      double denom = 0.0;
      for (FileId f : request.files) {
        std::uint64_t d = 0;
        for (std::size_t j = 0; j <= t; ++j) {
          if (jobs[j].contains(f)) ++d;
        }
        denom += static_cast<double>(catalog.size_of(f)) /
                 static_cast<double>(d);
      }
      const double density =
          denom > 0.0 ? static_cast<double>(bundle) / denom : 0.0;
      ++stats.reuse_hits;
      stats.reuse_hit_bytes += bundle;
      stats.reuse_density_value += density;
      if (verdict.demand_feasible) {
        ++stats.demand_hits;
        stats.demand_hit_bytes += bundle;
        stats.demand_density_value += density;
      }
      if (verdict.opt_hit) {
        ++stats.opt_hits;
        stats.opt_hit_bytes += bundle;
        stats.opt_density_value += density;
      }
    }
    result.verdicts.push_back(verdict);
  }
  return result;
}

}  // namespace fbc::testing
