// Fundamental identifiers and the Request (file-bundle) value type shared by
// every layer of the library.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace fbc {

/// Dense file identifier: index into the FileCatalog.
using FileId = std::uint32_t;

/// Sentinel for "no file".
inline constexpr FileId kInvalidFileId =
    std::numeric_limits<FileId>::max();

/// A job's file-bundle: the set of files that must all be resident in the
/// cache simultaneously for the job to be serviced (paper section 2,
/// "One File-Bundle at a Time" service model).
///
/// Invariant (after canonicalize()): `files` is sorted and duplicate-free.
/// Two jobs are the *same request* iff their canonical bundles are equal;
/// this identity drives popularity counting in the request history.
struct Request {
  std::vector<FileId> files;

  Request() = default;
  explicit Request(std::vector<FileId> ids) : files(std::move(ids)) {
    canonicalize();
  }

  /// Sorts and deduplicates `files`, establishing the class invariant.
  void canonicalize();

  /// True when the bundle is in canonical (sorted, unique) form.
  [[nodiscard]] bool is_canonical() const noexcept;

  /// Number of files in the bundle.
  [[nodiscard]] std::size_t size() const noexcept { return files.size(); }

  [[nodiscard]] bool empty() const noexcept { return files.empty(); }

  /// Membership test by binary search. Precondition: canonical form.
  [[nodiscard]] bool contains(FileId id) const noexcept;

  friend bool operator==(const Request&, const Request&) = default;

  /// Human-readable rendering "{3, 7, 12}" for logs and test failures.
  [[nodiscard]] std::string to_string() const;
};

/// FNV-1a-style hash over the canonical file list, for use as a hash-map
/// key in the request history L(R).
struct RequestHash {
  [[nodiscard]] std::size_t operator()(const Request& r) const noexcept;
};

/// Hashes an arbitrary span of file ids with the same function as
/// RequestHash (useful for probing without materializing a Request).
[[nodiscard]] std::size_t hash_file_span(std::span<const FileId> ids) noexcept;

}  // namespace fbc
