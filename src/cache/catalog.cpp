// FileCatalog is header-only; this translation unit exists to compile the
// header standalone under the project's warning set.
#include "cache/catalog.hpp"
