#include "cache/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/stats.hpp"

namespace fbc {

void CacheMetrics::record_job(Bytes requested, Bytes missed,
                              std::size_t files_req,
                              std::size_t files_hit) noexcept {
  ++jobs_;
  if (missed == 0) ++request_hits_;
  files_requested_ += files_req;
  file_hits_ += files_hit;
  bytes_requested_ += requested;
  bytes_missed_ += missed;
}

void CacheMetrics::record_eviction(Bytes bytes) noexcept {
  ++evictions_;
  bytes_evicted_ += bytes;
}

void CacheMetrics::record_prefetch(Bytes bytes) noexcept {
  bytes_prefetched_ += bytes;
}

void CacheMetrics::record_unserviceable() noexcept { ++unserviceable_; }

void CacheMetrics::record_selection_cost(const SelectionCost& cost) noexcept {
  selection_cost_.merge(cost);
  scanned_hist_.record(cost.candidates_scanned);
  rescored_hist_.record(cost.entries_rescored);
  heap_ops_hist_.record(cost.heap_ops);
}

void CacheMetrics::record_queue_wait(double services_waited) noexcept {
  ++wait_count_;
  wait_sum_ += services_waited;
  wait_max_ = std::max(wait_max_, services_waited);
}

double CacheMetrics::request_hit_ratio() const noexcept {
  if (jobs_ == 0) return 0.0;
  return static_cast<double>(request_hits_) / static_cast<double>(jobs_);
}

double CacheMetrics::request_miss_ratio() const noexcept {
  return 1.0 - request_hit_ratio();
}

double CacheMetrics::file_hit_ratio() const noexcept {
  if (files_requested_ == 0) return 0.0;
  return static_cast<double>(file_hits_) /
         static_cast<double>(files_requested_);
}

double CacheMetrics::byte_miss_ratio() const noexcept {
  if (bytes_requested_ == 0) return 0.0;
  return static_cast<double>(bytes_missed_) /
         static_cast<double>(bytes_requested_);
}

double CacheMetrics::moved_bytes_ratio() const noexcept {
  if (bytes_requested_ == 0) return 0.0;
  return static_cast<double>(bytes_missed_ + bytes_prefetched_) /
         static_cast<double>(bytes_requested_);
}

double CacheMetrics::byte_hit_ratio() const noexcept {
  return 1.0 - byte_miss_ratio();
}

double CacheMetrics::avg_bytes_moved_per_job() const noexcept {
  if (jobs_ == 0) return 0.0;
  return static_cast<double>(bytes_missed_ + bytes_prefetched_) /
         static_cast<double>(jobs_);
}

double CacheMetrics::mean_queue_wait() const noexcept {
  if (wait_count_ == 0) return 0.0;
  return wait_sum_ / static_cast<double>(wait_count_);
}

double CacheMetrics::max_queue_wait() const noexcept { return wait_max_; }

void CacheMetrics::merge(const CacheMetrics& other) noexcept {
  jobs_ += other.jobs_;
  request_hits_ += other.request_hits_;
  files_requested_ += other.files_requested_;
  file_hits_ += other.file_hits_;
  bytes_requested_ += other.bytes_requested_;
  bytes_missed_ += other.bytes_missed_;
  evictions_ += other.evictions_;
  bytes_evicted_ += other.bytes_evicted_;
  bytes_prefetched_ += other.bytes_prefetched_;
  unserviceable_ += other.unserviceable_;
  selection_cost_.merge(other.selection_cost_);
  scanned_hist_.merge(other.scanned_hist_);
  rescored_hist_.merge(other.rescored_hist_);
  heap_ops_hist_.merge(other.heap_ops_hist_);
  wait_count_ += other.wait_count_;
  wait_sum_ += other.wait_sum_;
  wait_max_ = std::max(wait_max_, other.wait_max_);
}

std::string CacheMetrics::summary() const {
  std::ostringstream oss;
  oss << "jobs=" << jobs_ << " request_hit=" << format_double(request_hit_ratio())
      << " byte_miss=" << format_double(byte_miss_ratio())
      << " moved/job=" << format_bytes(static_cast<Bytes>(avg_bytes_moved_per_job()))
      << " evictions=" << evictions_;
  if (unserviceable_ > 0) oss << " unserviceable=" << unserviceable_;
  return oss.str();
}

}  // namespace fbc
