#include "cache/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/log.hpp"

namespace fbc {

Simulator::Simulator(const SimulatorConfig& config, const FileCatalog& catalog,
                     ReplacementPolicy& policy)
    : config_(config),
      catalog_(&catalog),
      policy_(&policy),
      cache_(config.cache_bytes, catalog) {
  if (config_.queue_length == 0)
    throw std::invalid_argument("Simulator: queue_length must be >= 1");
}

void Simulator::serve_one(const Request& request, CacheMetrics& metrics) {
  if (observer_ != nullptr) observer_->on_job_start(request, cache_);
  policy_->on_job_arrival(request, cache_);

  const Bytes requested = catalog_->request_bytes(request);
  if (requested > cache_.capacity()) {
    // The bundle can never fit; the workload generators avoid this, but a
    // user-supplied trace may not.
    metrics.record_unserviceable();
    FBC_LOG(Warn) << "skipping unserviceable request " << request.to_string()
                  << " (" << format_bytes(requested) << " > cache "
                  << format_bytes(cache_.capacity()) << ")";
    if (observer_ != nullptr)
      observer_->on_job_serviced(request, cache_, metrics);
    return;
  }

  const std::vector<FileId> missing = cache_.missing_files(request);
  if (missing.empty()) {
    metrics.record_job(requested, 0, request.size(), request.size());
    policy_->on_request_hit(request, cache_);
    if (observer_ != nullptr)
      observer_->on_job_serviced(request, cache_, metrics);
    return;
  }

  const Bytes missing_bytes = catalog_->bundle_bytes(missing);
  const std::size_t files_hit = request.size() - missing.size();

  // Pin the already-resident part of the bundle: no policy may evict files
  // of the job being admitted.
  for (FileId id : request.files) {
    if (cache_.contains(id)) cache_.pin(id);
  }

  if (cache_.free_bytes() < missing_bytes) {
    const Bytes needed = missing_bytes - cache_.free_bytes();
    ++result_.decisions;
    const SelectionCost* cost_counter = policy_->selection_cost();
    const SelectionCost cost_before =
        cost_counter != nullptr ? *cost_counter : SelectionCost{};
    const std::vector<FileId> victims =
        policy_->select_victims(request, needed, cache_);
    if (cost_counter != nullptr) {
      SelectionCost delta = *cost_counter;
      delta.decisions -= cost_before.decisions;
      delta.candidates_scanned -= cost_before.candidates_scanned;
      delta.entries_rescored -= cost_before.entries_rescored;
      delta.heap_ops -= cost_before.heap_ops;
      metrics.record_selection_cost(delta);
    }
    for (FileId victim : victims) {
      if (request.contains(victim))
        throw PolicyContractViolation(
            policy_->name() + ": tried to evict a file of the incoming request");
      if (!cache_.contains(victim))
        throw PolicyContractViolation(
            policy_->name() + ": victim not resident (or listed twice)");
      if (cache_.pinned(victim))
        throw PolicyContractViolation(policy_->name() +
                                      ": tried to evict a pinned file");
      const Bytes size = catalog_->size_of(victim);
      cache_.evict(victim);
      metrics.record_eviction(size);
      policy_->on_file_evicted(victim);
      if (observer_ != nullptr) observer_->on_eviction(victim, cache_);
      ++result_.victims;
    }
    if (cache_.free_bytes() < missing_bytes)
      throw PolicyContractViolation(policy_->name() +
                                    ": victims freed insufficient space");
  }

  for (FileId id : missing) cache_.insert(id);
  policy_->on_files_loaded(request, missing, cache_);

  for (FileId id : request.files) {
    if (cache_.pinned(id)) cache_.unpin(id);
  }

  metrics.record_job(requested, missing_bytes, request.size(), files_hit);

  // Speculative loads (Algorithm 2 step 3 under untruncated history):
  // admitted only into free space, charged as moved bytes.
  std::vector<FileId> prefetched;
  for (FileId id : policy_->prefetch(request, cache_)) {
    if (cache_.contains(id)) continue;
    const Bytes size = catalog_->size_of(id);
    if (size > cache_.free_bytes()) continue;
    cache_.insert(id);
    metrics.record_prefetch(size);
    prefetched.push_back(id);
  }
  if (!prefetched.empty()) policy_->on_prefetched(prefetched, cache_);
  assert(cache_.used_bytes() <= cache_.capacity());
  if (observer_ != nullptr) observer_->on_job_serviced(request, cache_, metrics);
}

SimulationResult Simulator::run(std::span<const Request> jobs) {
  if (ran_) throw std::logic_error("Simulator::run: already ran");
  ran_ = true;

  std::size_t served = 0;
  auto metrics_for_next = [&]() -> CacheMetrics& {
    return served < config_.warmup_jobs ? result_.warmup : result_.metrics;
  };

  if (config_.queue_length <= 1) {
    for (const Request& job : jobs) {
      CacheMetrics& metrics = metrics_for_next();
      serve_one(job, metrics);
      metrics.record_queue_wait(0.0);
      ++served;
    }
    if (observer_ != nullptr) observer_->on_run_complete(cache_, result_);
    return result_;
  }

  // Queued service. Each queue entry remembers its arrival order so
  // scheduling fairness (queue waits, lockout) can be measured.
  struct Queued {
    Request request;
    std::size_t arrival;  ///< index in the submitted stream
  };
  std::size_t next = 0;
  std::vector<Queued> queue;
  std::vector<Request> requests;  // parallel view handed to the policy
  std::vector<double> ages;
  queue.reserve(config_.queue_length);

  auto admit_until_full = [&] {
    while (queue.size() < config_.queue_length && next < jobs.size()) {
      queue.push_back(Queued{jobs[next], next});
      ++next;
    }
  };
  auto serve_pick = [&] {
    requests.clear();
    ages.clear();
    for (const Queued& entry : queue) {
      requests.push_back(entry.request);
      // Age = how many services happened since this entry arrived and
      // could first have been served.
      ages.push_back(static_cast<double>(
          served > entry.arrival ? served - entry.arrival : 0));
    }
    const std::size_t pick = policy_->choose_next(requests, ages, cache_);
    if (pick >= queue.size())
      throw PolicyContractViolation(policy_->name() +
                                    ": choose_next index out of range");
    CacheMetrics& metrics = metrics_for_next();
    serve_one(queue[pick].request, metrics);
    metrics.record_queue_wait(ages[pick]);
    ++served;
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));
  };

  if (config_.queue_mode == QueueMode::Batch) {
    // Accumulate a full batch, drain it completely, repeat (paper §5.3).
    while (next < jobs.size() || !queue.empty()) {
      admit_until_full();
      while (!queue.empty()) serve_pick();
    }
  } else {
    // Sliding window: top the queue up after every service.
    admit_until_full();
    while (!queue.empty()) {
      serve_pick();
      admit_until_full();
    }
  }
  if (observer_ != nullptr) observer_->on_run_complete(cache_, result_);
  return result_;
}

SimulationResult simulate(const SimulatorConfig& config,
                          const FileCatalog& catalog, ReplacementPolicy& policy,
                          std::span<const Request> jobs,
                          SimulationObserver* observer) {
  Simulator sim(config, catalog, policy);
  sim.set_observer(observer);
  return sim.run(jobs);
}

}  // namespace fbc
