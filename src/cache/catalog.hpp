// FileCatalog: the authoritative registry of files and their sizes.
//
// Files in the simulated grid are identified by dense FileIds so the cache
// and the policies can use flat arrays instead of hash maps on the hot
// path. The catalog is immutable during a simulation run; workload
// generators populate it up front.
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "cache/types.hpp"
#include "util/bytes.hpp"

namespace fbc {

/// Registry mapping FileId -> size in bytes.
class FileCatalog {
 public:
  FileCatalog() = default;

  /// Creates a catalog from a dense size table (index == FileId).
  explicit FileCatalog(std::vector<Bytes> sizes) : sizes_(std::move(sizes)) {}

  /// Registers a new file and returns its id. Precondition: bytes > 0
  /// (zero-size files would break adjusted-size arithmetic).
  FileId add_file(Bytes bytes) {
    assert(bytes > 0);
    sizes_.push_back(bytes);
    return static_cast<FileId>(sizes_.size() - 1);
  }

  /// Number of registered files.
  [[nodiscard]] std::size_t count() const noexcept { return sizes_.size(); }

  /// True when `id` names a registered file.
  [[nodiscard]] bool valid(FileId id) const noexcept {
    return id < sizes_.size();
  }

  /// Size of file `id`. Precondition: valid(id).
  [[nodiscard]] Bytes size_of(FileId id) const noexcept {
    assert(valid(id));
    return sizes_[id];
  }

  /// Total size of a set of files (no dedup: caller passes canonical sets).
  [[nodiscard]] Bytes bundle_bytes(std::span<const FileId> ids) const noexcept {
    Bytes total = 0;
    for (FileId id : ids) total += size_of(id);
    return total;
  }

  /// Total size of a request's bundle.
  [[nodiscard]] Bytes request_bytes(const Request& r) const noexcept {
    return bundle_bytes(r.files);
  }

  /// Sum of all file sizes in the catalog.
  [[nodiscard]] Bytes total_bytes() const noexcept {
    Bytes total = 0;
    for (Bytes s : sizes_) total += s;
    return total;
  }

  /// Read-only view of the size table.
  [[nodiscard]] std::span<const Bytes> sizes() const noexcept {
    return sizes_;
  }

 private:
  std::vector<Bytes> sizes_;
};

}  // namespace fbc
