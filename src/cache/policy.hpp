// ReplacementPolicy: the interface every caching algorithm implements.
//
// The Simulator drives the protocol per arriving job r:
//
//   1. on_job_arrival(r, cache)      -- observe every arrival (history
//                                       bookkeeping happens here);
//   2. if the cache already supports r:    on_request_hit(r, cache);
//   3. else, if r's missing files exceed free space:
//        select_victims(r, needed, cache)  -- the policy returns the files
//        to evict. It may return MORE than needed (OptFileBundle
//        reorganizes the whole cache); it must never return files of r
//        itself or pinned files, and the freed bytes must cover `needed`.
//   4. the simulator evicts the victims, loads r's missing files, then
//      calls on_files_loaded(r, loaded, cache).
//
// Policies are stateful and single-simulation: construct a fresh instance
// (or call reset()) per run.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "cache/cache.hpp"
#include "cache/metrics.hpp"
#include "cache/types.hpp"

namespace fbc {

/// Abstract cache replacement policy (see file comment for the protocol).
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Stable policy name used by the registry and in benchmark tables.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once for every arriving job, before hit/miss is resolved.
  virtual void on_job_arrival(const Request& request, const DiskCache& cache) {
    (void)request;
    (void)cache;
  }

  /// Called when the cache already supports `request` (a request-hit).
  virtual void on_request_hit(const Request& request, const DiskCache& cache) {
    (void)request;
    (void)cache;
  }

  /// Chooses files to evict so that at least `bytes_needed` bytes are
  /// freed. `bytes_needed` is > 0 and never exceeds what evicting every
  /// unpinned non-requested file would free. Returning extra victims is
  /// allowed; returning a file of `request`, a pinned file, or a
  /// non-resident file is a contract violation (the simulator throws).
  [[nodiscard]] virtual std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed, const DiskCache& cache) = 0;

  /// Called after the simulator loads `loaded` (the files of `request` that
  /// were missing) into the cache.
  virtual void on_files_loaded(const Request& request,
                               std::span<const FileId> loaded,
                               const DiskCache& cache) {
    (void)request;
    (void)loaded;
    (void)cache;
  }

  /// Called when a resident file is evicted for any reason (victims chosen
  /// by this policy included). Lets bookkeeping policies drop per-file
  /// state.
  virtual void on_file_evicted(FileId id) { (void)id; }

  /// Called after the simulator admits files returned by prefetch() into
  /// free space. `loaded` lists only the files actually inserted (already
  /// resident or non-fitting ones were skipped). Event-driven policies
  /// need this: prefetch is the one cache mutation not covered by
  /// on_files_loaded / on_file_evicted.
  virtual void on_prefetched(std::span<const FileId> loaded,
                             const DiskCache& cache) {
    (void)loaded;
    (void)cache;
  }

  /// Optional prefetch hook, called after `request` has been serviced.
  /// The returned files are loaded in order as long as they fit in the
  /// current free space (files that do not fit, or are already resident,
  /// are skipped); prefetched bytes are charged to the metrics as moved
  /// data. OptFileBundle uses this for Algorithm 2 step 3, which loads
  /// F(Opt) \ F(C) -- files of valuable historical requests that are not
  /// resident (only possible under Full/Window history truncation).
  [[nodiscard]] virtual std::vector<FileId> prefetch(const Request& request,
                                                     const DiskCache& cache) {
    (void)request;
    (void)cache;
    return {};
  }

  /// Queue scheduling hook: picks which queued request to serve next.
  /// `queue` is non-empty; the default is FCFS (index 0). OptFileBundle
  /// overrides this with highest-adjusted-relative-value-first (paper §5.3).
  [[nodiscard]] virtual std::size_t choose_next(
      std::span<const Request> queue, const DiskCache& cache) {
    (void)queue;
    (void)cache;
    return 0;
  }

  /// Age-aware variant used by the sliding queue (paper §5.2: a fair
  /// scheduler "avoids request lockout but at the same time minimizes the
  /// byte miss ratio"). `ages[i]` is how many services job i has already
  /// waited through. Defaults to ignoring ages.
  [[nodiscard]] virtual std::size_t choose_next(
      std::span<const Request> queue, std::span<const double> ages,
      const DiskCache& cache) {
    (void)ages;
    return choose_next(queue, cache);
  }

  /// Cumulative selection-effort counters, or nullptr when the policy does
  /// not instrument its replacement decisions. The simulator snapshots
  /// this around select_victims and charges the delta to CacheMetrics.
  [[nodiscard]] virtual const SelectionCost* selection_cost() const {
    return nullptr;
  }

  /// Clears all per-run state, making the instance reusable.
  virtual void reset() {}
};

using PolicyPtr = std::unique_ptr<ReplacementPolicy>;

}  // namespace fbc
