// DiskCache: the simulated SRM staging disk.
//
// Tracks which files are resident, enforces the capacity invariant, and
// supports pinning: files belonging to the job currently being admitted are
// pinned so no replacement policy can evict them out from under the job
// (the paper's service model requires the whole bundle resident at once).
#pragma once

#include <unordered_set>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/types.hpp"

namespace fbc {

/// Fixed-capacity cache of whole files.
///
/// Invariants (checked in debug builds, maintained unconditionally):
///  * used_bytes() <= capacity() at all times,
///  * a pinned file cannot be evicted,
///  * insert/evict keep the resident set and byte accounting consistent.
class DiskCache {
 public:
  /// Creates an empty cache of `capacity` bytes over `catalog`.
  /// The catalog must outlive the cache. Precondition: capacity > 0.
  DiskCache(Bytes capacity, const FileCatalog& catalog);

  /// Total capacity in bytes.
  [[nodiscard]] Bytes capacity() const noexcept { return capacity_; }

  /// Bytes currently occupied by resident files.
  [[nodiscard]] Bytes used_bytes() const noexcept { return used_; }

  /// Bytes still free.
  [[nodiscard]] Bytes free_bytes() const noexcept { return capacity_ - used_; }

  /// Number of resident files.
  [[nodiscard]] std::size_t file_count() const noexcept {
    return resident_list_.size();
  }

  /// True when file `id` is resident.
  [[nodiscard]] bool contains(FileId id) const noexcept;

  /// True when every file of `r` is resident (a request-hit).
  [[nodiscard]] bool supports(const Request& r) const noexcept;

  /// The subset of `r`'s files that are NOT resident.
  [[nodiscard]] std::vector<FileId> missing_files(const Request& r) const;

  /// Total size of missing_files(r).
  [[nodiscard]] Bytes missing_bytes(const Request& r) const noexcept;

  /// Inserts `id`. Returns false (no-op) when already resident.
  /// Throws std::runtime_error if the file does not fit in free space.
  bool insert(FileId id);

  /// Evicts `id`. Returns false (no-op) when not resident.
  /// Throws std::runtime_error if the file is pinned.
  bool evict(FileId id);

  /// Pins a resident file (counted: pin twice, unpin twice).
  /// Precondition: contains(id).
  void pin(FileId id);

  /// Releases one pin. Precondition: pin count > 0.
  void unpin(FileId id);

  /// True when `id` has at least one outstanding pin.
  [[nodiscard]] bool pinned(FileId id) const noexcept;

  /// Read-only snapshot view of resident file ids (unspecified order; stable
  /// between mutations).
  [[nodiscard]] std::span<const FileId> resident_files() const noexcept {
    return resident_list_;
  }

  /// The catalog this cache resolves sizes against.
  [[nodiscard]] const FileCatalog& catalog() const noexcept {
    return *catalog_;
  }

  /// Evicts everything that is not pinned.
  void clear();

 private:
  void grow_tables(FileId id);

  Bytes capacity_;
  Bytes used_ = 0;
  const FileCatalog* catalog_;
  // Dense membership/pins keyed by FileId for O(1) lookups, plus a compact
  // list for iteration. slot_[id] is the index of id in resident_list_, or
  // kNotResident.
  static constexpr std::uint32_t kNotResident = 0xffffffffU;
  std::vector<std::uint32_t> slot_;
  std::vector<std::uint32_t> pins_;
  std::vector<FileId> resident_list_;
};

}  // namespace fbc
