// CacheMetrics: the performance counters the paper's evaluation reports.
//
// The headline metric is the *byte miss ratio* (paper §1.2): bytes that had
// to be moved into the cache divided by bytes requested. The paper also
// reports the average volume of data moved per request (Fig. 8) and
// discusses request throughput; all are derived from the counters here.
#pragma once

#include <cstdint>
#include <string>

#include "obs/histogram.hpp"
#include "util/bytes.hpp"

namespace fbc {

/// Per-arrival selection-effort counters, reported by policies that
/// instrument their replacement decision (see ReplacementPolicy::
/// selection_cost). Deterministic work counts, not wall-clock: they are
/// what the scaling bench and the CI perf guard compare across engines.
struct SelectionCost {
  /// Replacement decisions accounted for.
  std::uint64_t decisions = 0;
  /// History entries examined while building the candidate list.
  std::uint64_t candidates_scanned = 0;
  /// Entries whose adjusted relative value v'(r) was recomputed in full.
  std::uint64_t entries_rescored = 0;
  /// Heap pushes + pops performed by the greedy selector.
  std::uint64_t heap_ops = 0;

  void merge(const SelectionCost& other) noexcept {
    decisions += other.decisions;
    candidates_scanned += other.candidates_scanned;
    entries_rescored += other.entries_rescored;
    heap_ops += other.heap_ops;
  }
};

/// Accumulated counters for one simulation run.
///
/// The simulator calls the record_* methods; consumers read the derived
/// ratio accessors. "Measured" jobs exclude the configured warm-up prefix.
class CacheMetrics {
 public:
  /// Records a serviced job: `requested` total bundle bytes, `missed` bytes
  /// that had to be fetched (0 for a request-hit), and the file-level
  /// counts backing the classic per-file hit ratio.
  void record_job(Bytes requested, Bytes missed, std::size_t files_requested,
                  std::size_t files_hit) noexcept;

  /// Records an eviction of `bytes`.
  void record_eviction(Bytes bytes) noexcept;

  /// Records `bytes` loaded speculatively (policy prefetch, not demanded
  /// by the job being serviced).
  void record_prefetch(Bytes bytes) noexcept;

  /// Records a job whose bundle can never fit in the cache (skipped).
  void record_unserviceable() noexcept;

  /// Accumulates one replacement decision's selection effort.
  void record_selection_cost(const SelectionCost& cost) noexcept;

  /// Records how many other services a queued job waited through before
  /// being served (0 under FCFS; grows when scheduling reorders it).
  void record_queue_wait(double services_waited) noexcept;

  // -- raw counters -------------------------------------------------------

  [[nodiscard]] std::uint64_t jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::uint64_t request_hits() const noexcept {
    return request_hits_;
  }
  [[nodiscard]] std::uint64_t files_requested() const noexcept {
    return files_requested_;
  }
  [[nodiscard]] std::uint64_t file_hits() const noexcept { return file_hits_; }
  [[nodiscard]] Bytes bytes_requested() const noexcept {
    return bytes_requested_;
  }
  [[nodiscard]] Bytes bytes_missed() const noexcept { return bytes_missed_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] Bytes bytes_evicted() const noexcept { return bytes_evicted_; }
  [[nodiscard]] std::uint64_t unserviceable() const noexcept {
    return unserviceable_;
  }
  [[nodiscard]] Bytes bytes_prefetched() const noexcept {
    return bytes_prefetched_;
  }
  /// Selection effort accumulated over all replacement decisions (all
  /// zeros when the policy does not report it).
  [[nodiscard]] const SelectionCost& selection_cost() const noexcept {
    return selection_cost_;
  }

  // -- per-decision selection-effort distributions ------------------------
  //
  // The totals above hide tail decisions; these histograms hold one
  // observation per replacement decision, so `fbcsim --obs` can report
  // p50/p95/p99 of the selection effort instead of only means.

  /// History entries examined, per decision.
  [[nodiscard]] const obs::Histogram& scanned_hist() const noexcept {
    return scanned_hist_;
  }
  /// Entries fully rescored, per decision.
  [[nodiscard]] const obs::Histogram& rescored_hist() const noexcept {
    return rescored_hist_;
  }
  /// Heap pushes + pops, per decision.
  [[nodiscard]] const obs::Histogram& heap_ops_hist() const noexcept {
    return heap_ops_hist_;
  }

  // -- derived metrics (paper §1.2) ---------------------------------------

  /// Fraction of jobs whose whole bundle was already resident.
  [[nodiscard]] double request_hit_ratio() const noexcept;

  /// Fraction of jobs that required at least one fetch.
  [[nodiscard]] double request_miss_ratio() const noexcept;

  /// Per-file hit ratio (the classic metric the paper argues is the wrong
  /// target for bundles).
  [[nodiscard]] double file_hit_ratio() const noexcept;

  /// Demand bytes fetched / bytes requested -- the paper's headline
  /// metric (§1.2: bytes of requested files not found in the cache).
  /// Speculative prefetch traffic is NOT included here; see
  /// moved_bytes_ratio().
  [[nodiscard]] double byte_miss_ratio() const noexcept;

  /// 1 - byte_miss_ratio().
  [[nodiscard]] double byte_hit_ratio() const noexcept;

  /// (demand + prefetch bytes moved into the cache) / bytes requested:
  /// the total-traffic counterpart of byte_miss_ratio().
  [[nodiscard]] double moved_bytes_ratio() const noexcept;

  /// Average bytes moved into the cache per serviced job, prefetches
  /// included (Fig. 8 metric).
  [[nodiscard]] double avg_bytes_moved_per_job() const noexcept;

  /// Mean queue wait in services (0 when never recorded).
  [[nodiscard]] double mean_queue_wait() const noexcept;

  /// Worst queue wait in services -- the lockout indicator.
  [[nodiscard]] double max_queue_wait() const noexcept;

  /// Merges another run's counters into this one (multi-seed aggregation).
  void merge(const CacheMetrics& other) noexcept;

  /// One-line human-readable summary.
  [[nodiscard]] std::string summary() const;

 private:
  std::uint64_t jobs_ = 0;
  std::uint64_t request_hits_ = 0;
  std::uint64_t files_requested_ = 0;
  std::uint64_t file_hits_ = 0;
  Bytes bytes_requested_ = 0;
  Bytes bytes_missed_ = 0;
  std::uint64_t evictions_ = 0;
  Bytes bytes_evicted_ = 0;
  Bytes bytes_prefetched_ = 0;
  std::uint64_t unserviceable_ = 0;
  SelectionCost selection_cost_;
  obs::Histogram scanned_hist_;
  obs::Histogram rescored_hist_;
  obs::Histogram heap_ops_hist_;
  std::uint64_t wait_count_ = 0;
  double wait_sum_ = 0.0;
  double wait_max_ = 0.0;
};

}  // namespace fbc
