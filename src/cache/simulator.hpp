// Simulator: drives a job stream through a DiskCache under a
// ReplacementPolicy and produces CacheMetrics.
//
// This is the reproduction of the paper's `cacheSim` driver. It supports
// the two service disciplines evaluated in §5:
//   * FCFS           (queue_length == 1): jobs served in arrival order;
//   * batched queue  (queue_length == q > 1): q jobs are accumulated, then
//     the queue is drained by repeatedly letting the policy pick the next
//     request to serve ("serve the request of highest relative value in the
//     queue ... and repeat ... until it becomes empty", §5.3).
//
// The simulator owns all invariant enforcement: files of the job being
// admitted are pinned, victim lists are validated against the policy
// contract, and the capacity invariant is asserted after every admission.
#pragma once

#include <span>
#include <vector>

#include "cache/cache.hpp"
#include "cache/catalog.hpp"
#include "cache/metrics.hpp"
#include "cache/policy.hpp"

namespace fbc {

/// How the admission queue is drained when queue_length > 1.
enum class QueueMode {
  /// Accumulate queue_length jobs, drain the whole batch in policy-chosen
  /// order, then admit the next batch (paper §5.3's description).
  Batch,
  /// Keep the queue topped up: after each service, one new job is
  /// admitted. Low-value requests can starve under value-based scheduling
  /// ("request lockout", §5.2) unless the policy applies aging.
  Sliding,
};

/// Configuration for one simulation run.
struct SimulatorConfig {
  /// Cache capacity in bytes. Required, > 0.
  Bytes cache_bytes = 0;
  /// Admission queue length; 1 means plain FCFS.
  std::size_t queue_length = 1;
  /// Number of leading jobs whose metrics are recorded separately as
  /// warm-up (cold-start misses would otherwise bias short runs).
  std::size_t warmup_jobs = 0;
  /// Drain discipline for queue_length > 1.
  QueueMode queue_mode = QueueMode::Batch;
};

/// Outcome of Simulator::run.
struct SimulationResult {
  /// Counters for the measured (post-warm-up) jobs.
  CacheMetrics metrics;
  /// Counters for the warm-up prefix.
  CacheMetrics warmup;
  /// Number of replacement decisions (select_victims invocations).
  std::uint64_t decisions = 0;
  /// Total victims evicted across all decisions.
  std::uint64_t victims = 0;
};

/// Thrown when a policy violates the ReplacementPolicy contract
/// (evicting pinned/requested/non-resident files or freeing too little).
class PolicyContractViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Passive observation hook for auditing or tracing a simulation from
/// outside the policy. The simulator invokes the callbacks below at fixed
/// protocol points; observers see the live cache and metrics objects and
/// must not mutate them. The invariant-audit fuzzer (`src/testing/`)
/// attaches an InvariantAuditor here to re-check capacity, pinning and
/// hit/miss accounting independently after every admission.
class SimulationObserver {
 public:
  virtual ~SimulationObserver() = default;

  /// Called at the start of servicing one job, before hit/miss resolution.
  virtual void on_job_start(const Request& request, const DiskCache& cache) {
    (void)request;
    (void)cache;
  }

  /// Called after each eviction performed on behalf of a replacement
  /// decision (the victim is already gone from `cache`).
  virtual void on_eviction(FileId id, const DiskCache& cache) {
    (void)id;
    (void)cache;
  }

  /// Called after one job has been fully serviced -- admission, metrics
  /// update and prefetch included -- or skipped as unserviceable.
  /// `metrics` is the counter object the job was recorded into (warm-up
  /// or measured).
  virtual void on_job_serviced(const Request& request, const DiskCache& cache,
                               const CacheMetrics& metrics) {
    (void)request;
    (void)cache;
    (void)metrics;
  }

  /// Called once when the whole run is complete.
  virtual void on_run_complete(const DiskCache& cache,
                               const SimulationResult& result) {
    (void)cache;
    (void)result;
  }
};

/// Single-run simulation driver (see file comment).
class Simulator {
 public:
  /// Binds the simulator to a catalog and a policy; both must outlive it.
  Simulator(const SimulatorConfig& config, const FileCatalog& catalog,
            ReplacementPolicy& policy);

  /// Services `jobs` in order (or via the batched queue) and returns the
  /// accumulated metrics. May be called once per Simulator instance.
  SimulationResult run(std::span<const Request> jobs);

  /// Attaches an observer (nullptr detaches). Call before run(); the
  /// observer must outlive the run.
  void set_observer(SimulationObserver* observer) noexcept {
    observer_ = observer;
  }

  /// Post-run cache inspection (e.g. tests asserting final contents).
  [[nodiscard]] const DiskCache& cache() const noexcept { return cache_; }

 private:
  void serve_one(const Request& request, CacheMetrics& metrics);

  SimulatorConfig config_;
  const FileCatalog* catalog_;
  ReplacementPolicy* policy_;
  DiskCache cache_;
  SimulationResult result_;
  SimulationObserver* observer_ = nullptr;
  bool ran_ = false;
};

/// Convenience wrapper: constructs a Simulator and runs `jobs`, with an
/// optional observer attached for the duration of the run.
SimulationResult simulate(const SimulatorConfig& config,
                          const FileCatalog& catalog,
                          ReplacementPolicy& policy,
                          std::span<const Request> jobs,
                          SimulationObserver* observer = nullptr);

}  // namespace fbc
