// Simulator: drives a job stream through a DiskCache under a
// ReplacementPolicy and produces CacheMetrics.
//
// This is the reproduction of the paper's `cacheSim` driver. It supports
// the two service disciplines evaluated in §5:
//   * FCFS           (queue_length == 1): jobs served in arrival order;
//   * batched queue  (queue_length == q > 1): q jobs are accumulated, then
//     the queue is drained by repeatedly letting the policy pick the next
//     request to serve ("serve the request of highest relative value in the
//     queue ... and repeat ... until it becomes empty", §5.3).
//
// The simulator owns all invariant enforcement: files of the job being
// admitted are pinned, victim lists are validated against the policy
// contract, and the capacity invariant is asserted after every admission.
#pragma once

#include <span>
#include <vector>

#include "cache/cache.hpp"
#include "cache/catalog.hpp"
#include "cache/metrics.hpp"
#include "cache/policy.hpp"

namespace fbc {

/// How the admission queue is drained when queue_length > 1.
enum class QueueMode {
  /// Accumulate queue_length jobs, drain the whole batch in policy-chosen
  /// order, then admit the next batch (paper §5.3's description).
  Batch,
  /// Keep the queue topped up: after each service, one new job is
  /// admitted. Low-value requests can starve under value-based scheduling
  /// ("request lockout", §5.2) unless the policy applies aging.
  Sliding,
};

/// Configuration for one simulation run.
struct SimulatorConfig {
  /// Cache capacity in bytes. Required, > 0.
  Bytes cache_bytes = 0;
  /// Admission queue length; 1 means plain FCFS.
  std::size_t queue_length = 1;
  /// Number of leading jobs whose metrics are recorded separately as
  /// warm-up (cold-start misses would otherwise bias short runs).
  std::size_t warmup_jobs = 0;
  /// Drain discipline for queue_length > 1.
  QueueMode queue_mode = QueueMode::Batch;
};

/// Outcome of Simulator::run.
struct SimulationResult {
  /// Counters for the measured (post-warm-up) jobs.
  CacheMetrics metrics;
  /// Counters for the warm-up prefix.
  CacheMetrics warmup;
  /// Number of replacement decisions (select_victims invocations).
  std::uint64_t decisions = 0;
  /// Total victims evicted across all decisions.
  std::uint64_t victims = 0;
};

/// Thrown when a policy violates the ReplacementPolicy contract
/// (evicting pinned/requested/non-resident files or freeing too little).
class PolicyContractViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Single-run simulation driver (see file comment).
class Simulator {
 public:
  /// Binds the simulator to a catalog and a policy; both must outlive it.
  Simulator(const SimulatorConfig& config, const FileCatalog& catalog,
            ReplacementPolicy& policy);

  /// Services `jobs` in order (or via the batched queue) and returns the
  /// accumulated metrics. May be called once per Simulator instance.
  SimulationResult run(std::span<const Request> jobs);

  /// Post-run cache inspection (e.g. tests asserting final contents).
  [[nodiscard]] const DiskCache& cache() const noexcept { return cache_; }

 private:
  void serve_one(const Request& request, CacheMetrics& metrics);

  SimulatorConfig config_;
  const FileCatalog* catalog_;
  ReplacementPolicy* policy_;
  DiskCache cache_;
  SimulationResult result_;
  bool ran_ = false;
};

/// Convenience wrapper: constructs a Simulator and runs `jobs`.
SimulationResult simulate(const SimulatorConfig& config,
                          const FileCatalog& catalog,
                          ReplacementPolicy& policy,
                          std::span<const Request> jobs);

}  // namespace fbc
