// ReplacementPolicy is an interface with inline defaults; this translation
// unit anchors its vtable/key function emission in one place.
#include "cache/policy.hpp"
