#include "cache/types.hpp"

#include <algorithm>
#include <sstream>

namespace fbc {

void Request::canonicalize() {
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
}

bool Request::is_canonical() const noexcept {
  for (std::size_t i = 1; i < files.size(); ++i) {
    if (files[i - 1] >= files[i]) return false;
  }
  return true;
}

bool Request::contains(FileId id) const noexcept {
  return std::binary_search(files.begin(), files.end(), id);
}

std::string Request::to_string() const {
  std::ostringstream oss;
  oss << '{';
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (i) oss << ", ";
    oss << files[i];
  }
  oss << '}';
  return oss.str();
}

std::size_t hash_file_span(std::span<const FileId> ids) noexcept {
  // FNV-1a over the id bytes, then a finalizing mix. Stable across runs so
  // traces hash identically everywhere.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (FileId id : ids) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (id >> shift) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<std::size_t>(h);
}

std::size_t RequestHash::operator()(const Request& r) const noexcept {
  return hash_file_span(r.files);
}

}  // namespace fbc
