#include "cache/cache.hpp"

#include <cassert>
#include <stdexcept>

namespace fbc {

DiskCache::DiskCache(Bytes capacity, const FileCatalog& catalog)
    : capacity_(capacity), catalog_(&catalog) {
  if (capacity == 0)
    throw std::invalid_argument("DiskCache: capacity must be positive");
  slot_.resize(catalog.count(), kNotResident);
  pins_.resize(catalog.count(), 0);
}

void DiskCache::grow_tables(FileId id) {
  if (id >= slot_.size()) {
    slot_.resize(id + 1, kNotResident);
    pins_.resize(id + 1, 0);
  }
}

bool DiskCache::contains(FileId id) const noexcept {
  return id < slot_.size() && slot_[id] != kNotResident;
}

bool DiskCache::supports(const Request& r) const noexcept {
  for (FileId id : r.files) {
    if (!contains(id)) return false;
  }
  return true;
}

std::vector<FileId> DiskCache::missing_files(const Request& r) const {
  std::vector<FileId> missing;
  for (FileId id : r.files) {
    if (!contains(id)) missing.push_back(id);
  }
  return missing;
}

Bytes DiskCache::missing_bytes(const Request& r) const noexcept {
  Bytes total = 0;
  for (FileId id : r.files) {
    if (!contains(id)) total += catalog_->size_of(id);
  }
  return total;
}

bool DiskCache::insert(FileId id) {
  if (!catalog_->valid(id))
    throw std::invalid_argument("DiskCache::insert: unknown file id");
  grow_tables(id);
  if (contains(id)) return false;
  const Bytes size = catalog_->size_of(id);
  if (size > free_bytes())
    throw std::runtime_error(
        "DiskCache::insert: file does not fit in free space");
  slot_[id] = static_cast<std::uint32_t>(resident_list_.size());
  resident_list_.push_back(id);
  used_ += size;
  return true;
}

bool DiskCache::evict(FileId id) {
  if (!contains(id)) return false;
  if (pins_[id] > 0)
    throw std::runtime_error("DiskCache::evict: file is pinned");
  const std::uint32_t pos = slot_[id];
  const FileId last = resident_list_.back();
  resident_list_[pos] = last;
  slot_[last] = pos;
  resident_list_.pop_back();
  slot_[id] = kNotResident;
  used_ -= catalog_->size_of(id);
  return true;
}

void DiskCache::pin(FileId id) {
  assert(contains(id));
  ++pins_[id];
}

void DiskCache::unpin(FileId id) {
  assert(id < pins_.size() && pins_[id] > 0);
  --pins_[id];
}

bool DiskCache::pinned(FileId id) const noexcept {
  return id < pins_.size() && pins_[id] > 0;
}

void DiskCache::clear() {
  // Iterate over a snapshot since evict() mutates resident_list_.
  std::vector<FileId> snapshot(resident_list_.begin(), resident_list_.end());
  for (FileId id : snapshot) {
    if (!pinned(id)) evict(id);
  }
}

}  // namespace fbc
