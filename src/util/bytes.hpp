// Byte-size type, literals and human-readable formatting.
//
// File and cache sizes throughout the library are expressed in plain bytes
// as 64-bit unsigned integers; this header provides the shared alias plus
// convenience constants so configuration code reads naturally
// (e.g. `cfg.cache_bytes = 10 * GiB`).
#pragma once

#include <cstdint>
#include <string>

namespace fbc {

/// Library-wide byte count type (files in a data-grid reach tens of GB, and
/// disk caches tens of TB, so 64 bits are required).
using Bytes = std::uint64_t;

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;
inline constexpr Bytes TiB = 1024 * GiB;

/// Formats a byte count with a binary-unit suffix: "512B", "1.50MiB",
/// "2.00GiB". Chooses the largest unit with a mantissa >= 1.
[[nodiscard]] std::string format_bytes(Bytes n);

/// Parses strings like "512", "16KiB", "1.5GiB", "100MB" (decimal suffixes
/// KB/MB/GB/TB are treated as their binary counterparts for simplicity).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] Bytes parse_bytes(const std::string& text);

}  // namespace fbc
