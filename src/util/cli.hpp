// Tiny command-line option parser for the bench and example binaries.
//
// Supports `--name=value`, `--name value` and boolean `--flag` forms plus
// automatic `--help` text. Unknown options are an error so typos in sweep
// scripts fail loudly instead of silently running defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fbc {

/// Declarative CLI parser.
///
/// Usage:
///   CliParser cli("bench_fig8", "Reproduces Fig. 8 (cache-size sweep)");
///   cli.add_option("jobs", "number of jobs per run", "10000");
///   cli.add_flag("csv", "emit CSV instead of an aligned table");
///   cli.parse(argc, argv);                 // exits(0) on --help
///   auto jobs = cli.get_u64("jobs");
class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers a value option with a default.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Registers a boolean flag (default false).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. On `--help` prints usage and calls std::exit(0).
  /// Throws std::invalid_argument for unknown or malformed options.
  void parse(int argc, const char* const* argv);

  /// Parses a pre-split token list (used by tests).
  void parse(const std::vector<std::string>& args);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name) const;
  [[nodiscard]] std::int64_t get_i64(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// True when the user supplied the option explicitly (vs. default).
  [[nodiscard]] bool was_set(const std::string& name) const;

  /// Renders the --help text.
  [[nodiscard]] std::string usage() const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool set_by_user = false;
  };

  const Option& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
};

}  // namespace fbc
