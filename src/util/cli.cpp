#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace fbc {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  options_[name] = Option{help, default_value, /*is_flag=*/false,
                          /*set_by_user=*/false};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{help, "false", /*is_flag=*/true,
                          /*set_by_user=*/false};
}

void CliParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

void CliParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected positional argument: " + arg);

    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = options_.find(name);
    if (it == options_.end())
      throw std::invalid_argument("unknown option: --" + name);
    Option& opt = it->second;

    if (opt.is_flag) {
      if (value && *value != "true" && *value != "false")
        throw std::invalid_argument("flag --" + name +
                                    " takes no value or true/false");
      opt.value = value.value_or("true");
    } else {
      if (!value) {
        if (i + 1 >= args.size())
          throw std::invalid_argument("option --" + name + " needs a value");
        value = args[++i];
      }
      opt.value = *value;
    }
    opt.set_by_user = true;
  }
}

const CliParser::Option& CliParser::find(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end())
    throw std::invalid_argument("option not registered: --" + name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  return find(name).value;
}

std::uint64_t CliParser::get_u64(const std::string& name) const {
  const std::string& v = find(name).value;
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " is not an unsigned integer: " + v);
  }
}

std::int64_t CliParser::get_i64(const std::string& name) const {
  const std::string& v = find(name).value;
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " is not an integer: " + v);
  }
}

double CliParser::get_double(const std::string& name) const {
  const std::string& v = find(name).value;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " is not a number: " + v);
  }
}

bool CliParser::get_flag(const std::string& name) const {
  return find(name).value == "true";
}

bool CliParser::was_set(const std::string& name) const {
  return find(name).set_by_user;
}

std::string CliParser::usage() const {
  std::ostringstream oss;
  oss << program_ << " - " << description_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    oss << "  --" << name;
    if (!opt.is_flag) oss << "=<value>";
    oss << "\n      " << opt.help;
    if (!opt.is_flag) oss << " (default: " << opt.value << ")";
    oss << "\n";
  }
  oss << "  --help\n      show this message\n";
  return oss.str();
}

}  // namespace fbc
