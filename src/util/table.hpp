// Plain-text and CSV tabular output for benchmark harnesses.
//
// Every figure/table bench in bench/ prints its series through TextTable so
// the console output lines up and the same rows can be written as CSV for
// plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fbc {

/// A simple column-aligned text table.
///
/// Usage:
///   TextTable t({"cache", "landlord", "optfb"});
///   t.add_row({"10", "0.61", "0.34"});
///   t.print(std::cout);
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a data row. Rows shorter than the header are padded with
  /// empty cells; longer rows are rejected (throws std::invalid_argument).
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Number of columns.
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }

  /// Writes the table with space-aligned columns and a header rule.
  void print(std::ostream& os) const;

  /// Writes the table as RFC-4180-ish CSV (cells containing commas or
  /// quotes are quoted).
  void print_csv(std::ostream& os) const;

  /// Writes the table as a JSON array of row objects keyed by header.
  /// Cells that parse fully as numbers are emitted bare; everything else
  /// becomes a JSON string. This is the machine-readable format the bench
  /// harnesses emit under --json (see scripts/bench_to_json.py).
  void print_json(std::ostream& os) const;

  /// Convenience: renders print() into a string.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fbc
