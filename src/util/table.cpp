#include "util/table.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fbc {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size())
    throw std::invalid_argument("TextTable: row has more cells than columns");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << quote(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

void TextTable::print_json(std::ostream& os) const {
  auto escape = [](const std::string& cell) {
    std::string out;
    for (char ch : cell) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", ch);
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    return out;
  };
  auto numeric = [](const std::string& cell) {
    if (cell.empty()) return false;
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(cell.c_str(), &end);
    // Reject partial parses and values JSON cannot represent (inf/nan).
    return end == cell.c_str() + cell.size() && errno == 0 &&
           std::isfinite(value);
  };
  os << "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "\n" : ",\n") << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ", ";
      os << '"' << escape(headers_[c]) << "\": ";
      if (numeric(rows_[r][c])) {
        os << rows_[r][c];
      } else {
        os << '"' << escape(rows_[r][c]) << '"';
      }
    }
    os << "}";
  }
  os << "\n]\n";
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace fbc
