// Minimal leveled logger.
//
// The simulator is a library, so logging is off (Warn) by default and all
// output goes to stderr, keeping stdout clean for benchmark tables. The
// level is a process-wide atomic, and every message goes through a single
// mutex-guarded sink, so concurrent callers (sweep workers, fbcd pool
// threads) can never interleave characters within a line.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace fbc {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Sets the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level) noexcept;

/// Current process-wide log level.
[[nodiscard]] LogLevel log_level() noexcept;

/// Where formatted log lines go. Called with the sink mutex held: calls are
/// strictly serialized, one complete line per call, no trailing newline.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the process-wide sink (default: stderr). Passing an empty
/// function restores the stderr sink. Swapping the sink synchronizes with
/// in-flight log calls via the same mutex that serializes writes.
void set_log_sink(LogSink sink);

namespace detail {
void log_write(LogLevel level, const std::string& message);
}  // namespace detail

/// Statement-style logging:  FBC_LOG(Info) << "loaded " << n << " files";
/// The stream expression is only evaluated when the level is enabled.
#define FBC_LOG(level_name)                                          \
  for (bool fbc_log_once =                                           \
           ::fbc::log_level() <= ::fbc::LogLevel::level_name;        \
       fbc_log_once; fbc_log_once = false)                           \
  ::fbc::detail::LogLine(::fbc::LogLevel::level_name).stream()

namespace detail {
/// RAII helper that buffers one log line and flushes it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_write(level_, oss_.str()); }
  std::ostringstream& stream() { return oss_; }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace fbc
