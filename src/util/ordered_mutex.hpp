// OrderedMutex: a mutex with a static acquisition level, runtime-checked.
//
// Every lock in the serving layer carries a level from the documented
// hierarchy (docs/SERVING.md "Lock hierarchy"); a thread may only acquire
// locks with strictly increasing levels. The same discipline is checked
// twice:
//
//   * statically, by fbclint rule L007, which reads the machine-readable
//     `// fbc:lock-level(N)` annotation next to each declaration;
//   * dynamically, by this wrapper: when checking is enabled, each thread
//     keeps a stack of held locks, and acquiring a lock whose level is not
//     strictly greater than every held level reports both lock names and
//     aborts (a same-level acquire -- including a recursive one -- counts
//     as a violation too).
//
// Checking costs one relaxed atomic load per lock/unlock when disabled.
// It is enabled by default in builds configured with -DFBC_LOCK_CHECK=ON
// (CI's sanitizer matrix does this) and can be toggled at runtime with
// set_lock_check(); tests that exercise the checker itself install a
// violation handler through set_lock_violation_handler() instead of dying.
//
// The declared level must match the constructor literal -- fbclint L007
// cross-checks the annotation against the `{N, "name"}` initializer.
#pragma once

#include <cstddef>
#include <mutex>

namespace fbc {

/// Called on a lock-order violation with the offending pair: the lock
/// already held and the lock being acquired. The default (nullptr)
/// prints both names to stderr and aborts.
using LockViolationHandler = void (*)(const char* held_name, int held_level,
                                      const char* acquiring_name,
                                      int acquiring_level);

/// Enables/disables the per-thread order checking at runtime. The initial
/// value is ON in FBC_LOCK_CHECK builds, OFF otherwise.
void set_lock_check(bool enabled) noexcept;
[[nodiscard]] bool lock_check_enabled() noexcept;

/// Test seam: replaces abort-on-violation. nullptr restores the default.
/// When the handler returns, the acquisition proceeds (the handler has
/// acknowledged the violation), so tests can observe without dying.
void set_lock_violation_handler(LockViolationHandler handler) noexcept;

/// Number of OrderedMutex locks the calling thread currently holds
/// (0 when checking is disabled -- the stack is not maintained then).
[[nodiscard]] std::size_t held_lock_depth() noexcept;

/// std::mutex with a level and a name (see file comment). Satisfies
/// Lockable, so lock_guard/unique_lock/scoped_lock and
/// condition_variable_any work unchanged.
class OrderedMutex {
 public:
  OrderedMutex(int level, const char* name) noexcept
      : level_(level), name_(name) {}

  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock();
  void unlock();
  [[nodiscard]] bool try_lock();

  [[nodiscard]] int level() const noexcept { return level_; }
  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  std::mutex mu_;
  int level_;
  const char* name_;
};

}  // namespace fbc
