#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#ifdef _MSC_VER
#include <intrin.h>
#endif

namespace fbc {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// 64x64 -> high 64 bits of the 128-bit product.
inline std::uint64_t mul_high(std::uint64_t a, std::uint64_t b) noexcept {
#ifdef _MSC_VER
  return __umulh(a, b);
#else
  // __int128 is a GCC/Clang extension; silence -Wpedantic locally.
  __extension__ using u128 = unsigned __int128;
  return static_cast<std::uint64_t>((static_cast<u128>(a) * b) >> 64);
#endif
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm();
}

std::uint64_t Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == std::numeric_limits<std::uint64_t>::max()) return (*this)();
  // Lemire's nearly-divisionless unbiased bounded generation.
  const std::uint64_t range = span + 1;
  std::uint64_t x = (*this)();
  std::uint64_t hi_part = mul_high(x, range);
  std::uint64_t lo_part = x * range;
  if (lo_part < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (lo_part < threshold) {
      x = (*this)();
      hi_part = mul_high(x, range);
      lo_part = x * range;
    }
  }
  return lo + hi_part;
}

std::size_t Rng::index(std::size_t n) noexcept {
  assert(n > 0);
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

double Rng::uniform_double() noexcept {
  // 53 high bits scaled into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform_double();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected draws, produces a uniform k-subset.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  auto contains = [&chosen](std::size_t v) {
    for (std::size_t c : chosen)
      if (c == v) return true;
    return false;
  };
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(uniform_u64(0, j));
    if (!contains(t)) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::uint64_t Rng::derive_seed(std::uint64_t stream) noexcept {
  SplitMix64 sm((*this)() ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return sm();
}

}  // namespace fbc
