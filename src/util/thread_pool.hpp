// Fixed-size thread pool used to fan parameter sweeps out across cores.
//
// Each (policy, sweep-point, repetition) simulation is independent and
// single-threaded, so the bench harness submits them as tasks here. The
// pool is deliberately simple: one shared queue, condition-variable wakeup,
// graceful join in the destructor (RAII, Core Guidelines CP.25-ish: prefer
// managed tasks over raw threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <optional>
#include <queue>
#include <thread>
#include <vector>

#include "util/ordered_mutex.hpp"

namespace fbc {

/// A fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Schedules `fn(args...)`; returns a future for its result.
  template <typename F, typename... Args>
  auto submit(F&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using Result = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [fn = std::forward<F>(fn),
         ... captured = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(captured)...);
        });
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<OrderedMutex> lock(pool_mu_);
      if (stopping_)
        throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Non-throwing submit for callers that race pool shutdown (the fbcd
  /// accept loop hands connections to the pool while stop may already be
  /// in progress). Returns std::nullopt instead of throwing once the pool
  /// is stopping; the caller cleanly rejects the work.
  template <typename F, typename... Args>
  auto try_submit(F&& fn, Args&&... args)
      -> std::optional<std::future<std::invoke_result_t<F, Args...>>> {
    using Result = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [fn = std::forward<F>(fn),
         ... captured = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(captured)...);
        });
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<OrderedMutex> lock(pool_mu_);
      if (stopping_) return std::nullopt;
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from tasks are propagated (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  // fbc:lock-level(60)
  // fbc:guards(tasks_, stopping_)
  OrderedMutex pool_mu_{60, "ThreadPool::pool_mu_"};
  std::condition_variable_any cv_;
  bool stopping_ = false;
};

}  // namespace fbc
