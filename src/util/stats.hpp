// Streaming and batch statistics used by the benchmark harnesses to report
// means, spreads and confidence intervals over repeated simulation runs.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fbc {

/// Numerically stable streaming mean/variance accumulator (Welford).
/// Also tracks min/max. All operations are O(1).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  /// Number of observations added so far.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }

  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  /// Standard error of the mean.
  [[nodiscard]] double stderr_mean() const noexcept;

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (1.96 * stderr). Zero when fewer than two observations.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }

  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fractional rank of the `q`-quantile in a sorted sample of `n`
/// observations under the linear-interpolation convention used throughout
/// this project: position q * (n - 1) into the 0-based sorted order, with
/// `q` clamped to [0, 1]. Returns 0 for empty or single-element samples.
///
/// This is THE quantile convention. Every percentile consumer -- the
/// batch quantile() below, obs::Histogram's bucket-walk estimate, the
/// bench harness, fbcload -- derives its rank from here so that p95
/// means the same thing in every report.
[[nodiscard]] double quantile_rank(std::size_t n, double q) noexcept;

/// Linear-interpolation quantile of `values` (the data is copied and
/// sorted). `q` is clamped to [0, 1]. Total: an empty input returns
/// quiet NaN (callers that cannot tolerate NaN must check emptiness
/// themselves; formatting NaN renders as "nan", never UB).
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Arithmetic mean of `values`; 0 when empty.
[[nodiscard]] double mean_of(std::span<const double> values) noexcept;

/// Renders `x` with `digits` significant decimal places, trimming trailing
/// zeros ("0.25", "13", "0.0031").
[[nodiscard]] std::string format_double(double x, int digits = 4);

}  // namespace fbc
