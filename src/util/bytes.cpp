#include "util/bytes.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string_view>

namespace fbc {

std::string format_bytes(Bytes n) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(n);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%lluB", static_cast<unsigned long long>(n));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f%s", value, kUnits[unit]);
  }
  return buf;
}

Bytes parse_bytes(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("parse_bytes: empty string");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_bytes: no number in '" + text + "'");
  }
  if (value < 0.0)
    throw std::invalid_argument("parse_bytes: negative size '" + text + "'");
  std::string_view suffix(text);
  suffix.remove_prefix(pos);
  while (!suffix.empty() && suffix.front() == ' ') suffix.remove_prefix(1);

  double scale = 1.0;
  if (suffix.empty() || suffix == "B" || suffix == "b") {
    scale = 1.0;
  } else if (suffix == "KiB" || suffix == "KB" || suffix == "K" ||
             suffix == "kb" || suffix == "k") {
    scale = static_cast<double>(KiB);
  } else if (suffix == "MiB" || suffix == "MB" || suffix == "M" ||
             suffix == "mb" || suffix == "m") {
    scale = static_cast<double>(MiB);
  } else if (suffix == "GiB" || suffix == "GB" || suffix == "G" ||
             suffix == "gb" || suffix == "g") {
    scale = static_cast<double>(GiB);
  } else if (suffix == "TiB" || suffix == "TB" || suffix == "T" ||
             suffix == "tb" || suffix == "t") {
    scale = static_cast<double>(TiB);
  } else {
    throw std::invalid_argument("parse_bytes: unknown suffix in '" + text +
                                "'");
  }
  return static_cast<Bytes>(std::llround(value * scale));
}

}  // namespace fbc
