#include "util/log.hpp"

#include <cstdio>
#include <mutex>

#include "util/ordered_mutex.hpp"

namespace fbc {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
// Logging may happen from anywhere, including under every other lock in
// the hierarchy, so the write mutex sits at the very bottom (level 90).
// fbc:lock-level(90)
// fbc:guards(g_sink)
OrderedMutex g_write_mutex{90, "log::g_write_mutex"};
LogSink g_sink;  // empty = stderr

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(LogSink sink) {
  std::lock_guard<OrderedMutex> lock(g_write_mutex);
  g_sink = std::move(sink);
}

namespace detail {

void log_write(LogLevel level, const std::string& message) {
  std::lock_guard<OrderedMutex> lock(g_write_mutex);
  if (g_sink) {
    g_sink(level, message);
  } else {
    std::fprintf(stderr, "[fbc %s] %s\n", level_name(level), message.c_str());
  }
}

}  // namespace detail
}  // namespace fbc
