#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace fbc {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_halfwidth() const noexcept {
  return 1.96 * stderr_mean();
}

double quantile_rank(std::size_t n, double q) noexcept {
  if (n < 2) return 0.0;
  return std::clamp(q, 0.0, 1.0) * static_cast<double>(n - 1);
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = quantile_rank(sorted.size(), q);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean_of(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::string format_double(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, x);
  return buf;
}

}  // namespace fbc
