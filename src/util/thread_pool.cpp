#include "util/thread_pool.hpp"

#include <algorithm>

namespace fbc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<OrderedMutex> lock(pool_mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<OrderedMutex> lock(pool_mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace fbc
