#include "util/ordered_mutex.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace fbc {

namespace {

#ifdef FBC_LOCK_CHECK
constexpr bool kCheckDefault = true;
#else
constexpr bool kCheckDefault = false;
#endif

std::atomic<bool> g_check_enabled{kCheckDefault};
std::atomic<LockViolationHandler> g_handler{nullptr};

/// Per-thread stack of held locks. Fixed capacity: the documented
/// hierarchy has well under 16 levels, and a deeper chain is itself a
/// discipline smell -- overflow entries are silently untracked rather
/// than reallocating under a lock operation.
constexpr std::size_t kMaxHeld = 16;

struct HeldStack {
  const OrderedMutex* held[kMaxHeld];
  std::size_t size = 0;
};

thread_local HeldStack t_held;

void report_violation(const OrderedMutex& held, const OrderedMutex& acquiring) {
  const LockViolationHandler handler =
      g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(held.name(), held.level(), acquiring.name(), acquiring.level());
    return;
  }
  std::fprintf(stderr,
               "fbc: lock-order violation: acquiring '%s' (level %d) while "
               "holding '%s' (level %d); levels must strictly increase "
               "(docs/SERVING.md lock hierarchy)\n",
               acquiring.name(), acquiring.level(), held.name(), held.level());
  std::abort();
}

/// Checks `m` against every held lock, then records it. Called before the
/// underlying mutex is acquired so an inversion is reported instead of
/// deadlocking.
void check_and_push(const OrderedMutex& m) {
  for (std::size_t i = 0; i < t_held.size; ++i) {
    if (t_held.held[i]->level() >= m.level()) {
      report_violation(*t_held.held[i], m);
      break;  // handler returned: report once, then proceed
    }
  }
  if (t_held.size < kMaxHeld) t_held.held[t_held.size++] = &m;
}

void pop(const OrderedMutex& m) {
  // unique_lock allows out-of-order release; remove the most recent entry
  // for this mutex, wherever it sits.
  for (std::size_t i = t_held.size; i-- > 0;) {
    if (t_held.held[i] == &m) {
      for (std::size_t j = i + 1; j < t_held.size; ++j)
        t_held.held[j - 1] = t_held.held[j];
      --t_held.size;
      return;
    }
  }
}

bool checking() noexcept {
  return g_check_enabled.load(std::memory_order_relaxed);
}

}  // namespace

void set_lock_check(bool enabled) noexcept {
  g_check_enabled.store(enabled, std::memory_order_relaxed);
}

bool lock_check_enabled() noexcept { return checking(); }

void set_lock_violation_handler(LockViolationHandler handler) noexcept {
  g_handler.store(handler, std::memory_order_release);
}

std::size_t held_lock_depth() noexcept { return t_held.size; }

void OrderedMutex::lock() {
  if (checking()) check_and_push(*this);
  mu_.lock();
}

void OrderedMutex::unlock() {
  mu_.unlock();
  if (checking()) pop(*this);
}

bool OrderedMutex::try_lock() {
  if (!mu_.try_lock()) return false;
  if (checking()) check_and_push(*this);
  return true;
}

}  // namespace fbc
