// Deterministic, seedable random number generation for simulations.
//
// Simulation results must be exactly reproducible from a 64-bit seed, so we
// avoid std::mt19937 + distribution objects (whose output is not guaranteed
// to be identical across standard library implementations) and ship our own
// well-known generators:
//
//   * SplitMix64  -- used for seed expansion (one u64 in, stream of u64 out).
//   * Xoshiro256StarStar -- the workhorse generator; passes BigCrush, is
//     4x64-bit of state, and satisfies std::uniform_random_bit_generator.
//
// All derived sampling helpers (uniform integers, doubles, shuffles,
// sampling without replacement) are implemented here so every platform
// produces bit-identical traces for a given seed.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace fbc {

/// SplitMix64: a tiny, high-quality 64-bit generator used to expand a single
/// user-provided seed into the larger state of Xoshiro256StarStar (and to
/// derive independent sub-stream seeds for parallel sweeps).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 random bits.
  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the project-wide pseudo-random generator.
/// Satisfies std::uniform_random_bit_generator, so it can also be handed to
/// standard algorithms, but prefer the member helpers for reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator by expanding `seed` through SplitMix64, which
  /// guarantees a non-degenerate (non-zero) state for every seed value.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept;

  /// Next 64 random bits.
  std::uint64_t operator()() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in the closed range [lo, hi]. Precondition: lo <= hi.
  /// Uses Lemire's unbiased multiply-shift rejection method.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform size_t index in [0, n). Precondition: n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform_double() noexcept;

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double uniform_double(double lo, double hi) noexcept;

  /// Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle of `items` (uniform over all permutations).
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = index(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Draws `k` distinct indices from [0, n) uniformly at random (Floyd's
  /// algorithm); returned indices are in ascending order.
  /// Precondition: k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derives a statistically independent child seed. Distinct `stream`
  /// values yield independent sub-generators from the same parent seed;
  /// used to give each sweep point / repetition its own RNG.
  [[nodiscard]] std::uint64_t derive_seed(std::uint64_t stream) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace fbc
