// Quickstart: the smallest end-to-end use of the fbcache library.
//
//   1. register files in a FileCatalog,
//   2. define jobs as file-bundles (Request),
//   3. pick a replacement policy (here: the paper's OptFileBundle and the
//      Landlord baseline),
//   4. run the simulator and read the metrics.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <vector>

#include "cache/simulator.hpp"
#include "core/opt_file_bundle.hpp"
#include "policies/landlord.hpp"

int main() {
  using namespace fbc;

  // A tiny grid: eight files of 1-4 GiB.
  FileCatalog catalog;
  const FileId energy = catalog.add_file(2 * GiB);
  const FileId momentum = catalog.add_file(3 * GiB);
  const FileId charge = catalog.add_file(1 * GiB);
  const FileId mass = catalog.add_file(2 * GiB);
  const FileId spin = catalog.add_file(1 * GiB);
  const FileId velocity = catalog.add_file(2 * GiB);
  const FileId position = catalog.add_file(2 * GiB);
  const FileId time_attr = catalog.add_file(1 * GiB);

  // Analysis jobs: each needs its whole bundle resident simultaneously.
  const Request cut_analysis({energy, momentum});          // popular
  const Request mass_spectrum({charge, mass, spin});
  const Request trajectory({velocity, position, time_attr});
  std::vector<Request> jobs;
  for (int round = 0; round < 30; ++round) {
    jobs.push_back(cut_analysis);
    if (round % 3 == 0) jobs.push_back(mass_spectrum);
    if (round % 5 == 0) jobs.push_back(trajectory);
  }

  // A 10 GiB staging cache -- too small for all three bundles at once.
  const SimulatorConfig config{.cache_bytes = 10 * GiB};

  OptFileBundlePolicy optfb(catalog);
  const CacheMetrics bundle_aware =
      simulate(config, catalog, optfb, jobs).metrics;

  LandlordPolicy landlord;
  const CacheMetrics per_file =
      simulate(config, catalog, landlord, jobs).metrics;

  std::cout << "jobs serviced      : " << bundle_aware.jobs() << "\n";
  std::cout << "OptFileBundle      : " << bundle_aware.summary() << "\n";
  std::cout << "Landlord           : " << per_file.summary() << "\n";
  std::cout << "byte miss ratio    : "
            << bundle_aware.byte_miss_ratio() << " (OptFileBundle) vs "
            << per_file.byte_miss_ratio() << " (Landlord)\n";
  return 0;
}
