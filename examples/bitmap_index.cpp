// Bit-sliced bitmap index example (paper §1.1, third motivating
// application, after Wu et al., SSDBM'03).
//
// High-dimensional scientific data is indexed by one compressed bitmap
// file per (attribute, bin). A range query "energy in [20, 35) AND
// pt in [3, 9)" ORs together a contiguous run of bin bitmaps per
// constrained attribute -- and all of those files must be resident
// simultaneously to answer the query.
//
// The example also demonstrates trace save/replay, the mechanism for
// feeding real SRM logs into the simulator.
//
// Run: ./build/examples/bitmap_index [--jobs=N]
#include <filesystem>
#include <iostream>
#include <sstream>
#include <vector>

#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace fbc;

  CliParser cli("bitmap_index", "Bit-sliced index query cache demo");
  cli.add_option("jobs", "number of range queries", "5000");
  cli.add_option("seed", "workload seed", "42");
  cli.add_option("save-trace", "write the query trace to this path", "");
  cli.parse(argc, argv);

  BitmapConfig config;
  config.seed = cli.get_u64("seed");
  config.num_attributes = 20;
  config.bins_per_attribute = 25;
  config.num_jobs = cli.get_u64("jobs");
  const Workload w = generate_bitmap_workload(config);

  const Bytes cache_bytes = w.catalog.total_bytes() / 8;
  std::cout << "Bitmap index: " << config.num_attributes << " attributes x "
            << config.bins_per_attribute << " bins ("
            << format_bytes(w.catalog.total_bytes())
            << " of compressed bitmaps), " << w.pool.size()
            << " distinct range queries, cache " << format_bytes(cache_bytes)
            << "\n\n";

  // Optionally persist the trace (replayable with load_trace()).
  const std::string trace_path = cli.get_string("save-trace");
  if (!trace_path.empty()) {
    save_trace(trace_path, Trace{w.catalog, w.jobs, {}, {}, {}});
    std::cout << "trace written to " << trace_path << "\n";
  }

  // Round-trip the workload through the trace format to prove replay
  // equivalence, then simulate from the replayed trace.
  std::stringstream buffer;
  write_trace(buffer, Trace{w.catalog, w.jobs, {}, {}, {}});
  const Trace replay = read_trace(buffer);

  TextTable table({"policy", "request_hit", "byte_miss",
                   "data_moved_per_query"});
  for (const std::string name : {"optfb", "landlord", "gds-unit", "random"}) {
    PolicyContext context;
    context.catalog = &replay.catalog;
    context.jobs = replay.jobs;
    PolicyPtr policy = make_policy(name, context);
    SimulatorConfig sim_config{.cache_bytes = cache_bytes,
                               .warmup_jobs = replay.jobs.size() / 10};
    const CacheMetrics m =
        simulate(sim_config, replay.catalog, *policy, replay.jobs).metrics;
    table.add_row(
        {name, format_double(m.request_hit_ratio()),
         format_double(m.byte_miss_ratio()),
         format_bytes(static_cast<Bytes>(m.avg_bytes_moved_per_job()))});
  }
  table.print(std::cout);
  std::cout << "\nQueries repeat (Zipf over the query pool), and their bin "
               "runs overlap; bundle-aware replacement exploits both, "
               "per-file policies only the latter.\n";
  return 0;
}
