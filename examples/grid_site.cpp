// Full data-grid site walk-through: every substrate working together.
//
// Models a realistic SRM deployment end to end:
//   * a bitmap-index query workload (paper §1.1),
//   * files originating at a remote WAN site, with a bounded local
//     replica pool filled by popularity (ReplicaManager),
//   * an SRM with THREE concurrent service slots whose in-flight working
//     sets stay pinned in the staging cache (paper §6 retention),
//   * OptFileBundle vs Landlord replacement underneath it all,
//   * and the same workload on a 4-node cluster of independent caches.
//
// Run: ./build/examples/grid_site [--jobs=N]
#include <iostream>
#include <memory>
#include <vector>

#include "core/opt_file_bundle.hpp"
#include "core/registry.hpp"
#include "grid/cluster.hpp"
#include "grid/replica.hpp"
#include "grid/srm.hpp"
#include "policies/landlord.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace fbc;

  CliParser cli("grid_site", "Full data-grid site demo (SRM + replication + "
                             "multi-slot service + cluster)");
  cli.add_option("jobs", "number of query jobs", "2500");
  cli.add_option("seed", "workload seed", "42");
  cli.parse(argc, argv);

  BitmapConfig config;
  config.seed = cli.get_u64("seed");
  config.num_jobs = cli.get_u64("jobs");
  const Workload w = generate_bitmap_workload(config);
  const Bytes cache_bytes = w.catalog.total_bytes() / 6;

  std::cout << "Workload: " << w.pool.size()
            << " distinct bitmap range queries over "
            << format_bytes(w.catalog.total_bytes()) << "; staging cache "
            << format_bytes(cache_bytes) << "\n\n";

  // --- replica pool fed from historical access counts -------------------
  std::vector<std::uint64_t> access_counts(w.catalog.count(), 0);
  for (const Request& job : w.jobs) {
    for (FileId id : job.files) ++access_counts[id];
  }
  std::vector<ReplicaSite> sites{
      ReplicaSite{"origin-wan", StorageTier{"wan", 2.0, 25.0 * MiB}, 0},
      ReplicaSite{"local-pool", StorageTier{"disk", 0.05, 400.0 * MiB},
                  w.catalog.total_bytes() / 4},
  };
  ReplicaManager replicas(sites, w.catalog);
  replicas.replicate_by_popularity(access_counts);
  std::cout << "Local replica pool: "
            << format_bytes(replicas.replica_bytes(1)) << " of hot bitmaps "
            << "replicated from the WAN origin.\n\n";

  // --- timed SRM with 3 concurrent service slots ------------------------
  Rng rng(config.seed + 7);
  std::vector<GridJob> jobs;
  double arrival = 0.0;
  for (const Request& r : w.jobs) {
    jobs.push_back(GridJob{r, arrival, rng.uniform_double(0.5, 2.0)});
    arrival += rng.uniform_double(0.0, 3.0);
  }

  TextTable srm_table({"policy", "slots", "throughput_jobs_per_h",
                       "mean_response_s", "data_staged"});
  for (const std::string name : {"optfb", "landlord"}) {
    for (std::size_t slots : {std::size_t{1}, std::size_t{3}}) {
      PolicyContext context;
      context.catalog = &w.catalog;
      PolicyPtr policy = make_policy(name, context);
      SrmConfig srm_config{.cache_bytes = cache_bytes,
                           .transfers = TransferModel{.max_parallel = 4}};
      srm_config.service_slots = slots;
      StorageResourceManager srm(srm_config, replicas, *policy);
      const SrmReport report = srm.run(jobs);
      srm_table.add_row({name, std::to_string(slots),
                         format_double(report.throughput_jobs_per_hour()),
                         format_double(report.response_s.mean()),
                         format_bytes(report.bytes_staged)});
    }
  }
  std::cout << "Timed SRM (replica-aware staging, pinned in-flight "
               "working sets):\n";
  srm_table.print(std::cout);

  // --- the same stream over a 4-node cluster of independent caches ------
  std::cout << "\n4-node cluster (same total capacity, hash placement):\n";
  TextTable cluster_table({"policy", "request_hit", "byte_miss"});
  for (const std::string name : {"optfb", "landlord"}) {
    ClusterConfig cluster_config;
    cluster_config.nodes = 4;
    cluster_config.node_cache_bytes = cache_bytes / 4;
    cluster_config.warmup_jobs = w.jobs.size() / 10;
    const FileCatalog& catalog = w.catalog;
    ClusterSimulator cluster(cluster_config, catalog,
                             [&catalog, &name]() -> PolicyPtr {
                               if (name == "optfb")
                                 return std::make_unique<OptFileBundlePolicy>(
                                     catalog);
                               return std::make_unique<LandlordPolicy>();
                             });
    const ClusterResult result = cluster.run(w.jobs);
    cluster_table.add_row({name,
                           format_double(result.metrics.request_hit_ratio()),
                           format_double(result.metrics.byte_miss_ratio())});
  }
  cluster_table.print(std::cout);
  std::cout << "\nEverything composes: replica placement cuts WAN fetches, "
               "multi-slot service overlaps staging with processing, and "
               "bundle-aware replacement keeps whole query working sets "
               "resident.\n";
  return 0;
}
