// Climate model post-processing example (paper §1.1, Fig. 1).
//
// A climate simulation writes one file per (variable, time-chunk):
// temperature, humidity, the three wind components, ... Visualization and
// analysis jobs read a physically related *group* of variables over a
// contiguous range of chunks -- e.g. all wind components for a storm
// period -- and every file of that window must be staged simultaneously.
//
// The example shows how the admission queue (Fig. 9) interacts with the
// bundle-aware policy on this structured workload.
//
// Run: ./build/examples/climate_post [--jobs=N]
#include <iostream>
#include <vector>

#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace fbc;

  CliParser cli("climate_post", "Climate post-processing cache demo");
  cli.add_option("jobs", "number of analysis jobs", "4000");
  cli.add_option("seed", "workload seed", "42");
  cli.parse(argc, argv);

  ClimateConfig config;
  config.seed = cli.get_u64("seed");
  config.num_variables = 16;
  config.num_chunks = 30;
  config.num_groups = 8;
  config.num_jobs = cli.get_u64("jobs");
  const Workload w = generate_climate_workload(config);

  const Bytes cache_bytes = w.catalog.total_bytes() / 6;
  std::cout << "Climate workload: " << config.num_variables
            << " variables x " << config.num_chunks << " chunks ("
            << format_bytes(w.catalog.total_bytes()) << " total), "
            << w.pool.size() << " distinct range queries, cache "
            << format_bytes(cache_bytes) << "\n\n";

  // Policies head-to-head, FCFS service.
  TextTable policy_table({"policy", "request_hit", "byte_miss"});
  for (const std::string name : {"optfb", "landlord", "lfu"}) {
    PolicyContext context;
    context.catalog = &w.catalog;
    context.jobs = w.jobs;
    PolicyPtr policy = make_policy(name, context);
    SimulatorConfig sim_config{.cache_bytes = cache_bytes,
                               .warmup_jobs = w.jobs.size() / 10};
    const CacheMetrics m =
        simulate(sim_config, w.catalog, *policy, w.jobs).metrics;
    policy_table.add_row({name, format_double(m.request_hit_ratio()),
                          format_double(m.byte_miss_ratio())});
  }
  std::cout << "FCFS service:\n";
  policy_table.print(std::cout);

  // Admission-queue study on the same stream (paper Fig. 9): batching
  // lets OptFileBundle serve the most valuable waiting query first.
  std::cout << "\nOptFileBundle with admission queueing:\n";
  TextTable queue_table({"queue_length", "request_hit", "byte_miss"});
  for (std::size_t q : {std::size_t{1}, std::size_t{10}, std::size_t{50}}) {
    PolicyContext context;
    context.catalog = &w.catalog;
    PolicyPtr policy = make_policy("optfb", context);
    SimulatorConfig sim_config{.cache_bytes = cache_bytes,
                               .queue_length = q,
                               .warmup_jobs = w.jobs.size() / 10};
    const CacheMetrics m =
        simulate(sim_config, w.catalog, *policy, w.jobs).metrics;
    queue_table.add_row({"q" + std::to_string(q),
                         format_double(m.request_hit_ratio()),
                         format_double(m.byte_miss_ratio())});
  }
  queue_table.print(std::cout);
  std::cout << "\nVariable groups (e.g. u/v/w wind) are kept or evicted as "
               "units, so a visualization replaying a storm window finds "
               "its whole bundle resident.\n";
  return 0;
}
