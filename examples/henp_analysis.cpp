// HENP event-analysis example (paper §1.1, first motivating application).
//
// Collision events are vertically partitioned: one file per (run,
// attribute). Physicists submit analysis jobs that combine several
// attributes of one run ("energy x momentum x multiplicity cut"); the
// SRM's staging cache must hold each job's whole bundle at once.
//
// This example generates the HENP workload, runs it through a timed SRM
// whose files live on tape/remote MSS tiers, and compares OptFileBundle
// with Landlord on both cache metrics and user-visible response times.
//
// Run: ./build/examples/henp_analysis [--jobs=N]
#include <iostream>
#include <vector>

#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "grid/srm.hpp"
#include "grid/mss.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace fbc;

  CliParser cli("henp_analysis", "HENP vertical-partition analysis demo");
  cli.add_option("jobs", "number of analysis jobs", "3000");
  cli.add_option("seed", "workload seed", "42");
  cli.parse(argc, argv);

  HenpConfig config;
  config.seed = cli.get_u64("seed");
  config.num_runs = 24;
  config.num_attributes = 40;
  config.num_templates = 12;
  config.num_jobs = cli.get_u64("jobs");
  const Workload w = generate_henp_workload(config);

  const Bytes cache_bytes = w.catalog.total_bytes() / 5;
  std::cout << "HENP workload: " << config.num_runs << " runs x "
            << config.num_attributes << " attribute files ("
            << format_bytes(w.catalog.total_bytes()) << " total), "
            << w.pool.size() << " distinct analyses, " << w.jobs.size()
            << " jobs, cache " << format_bytes(cache_bytes) << "\n\n";

  // --- cache metrics ----------------------------------------------------
  TextTable metrics_table({"policy", "request_hit", "byte_miss",
                           "data_moved_per_job"});
  for (const std::string name : {"optfb", "landlord", "lru"}) {
    PolicyContext context;
    context.catalog = &w.catalog;
    context.jobs = w.jobs;
    PolicyPtr policy = make_policy(name, context);
    SimulatorConfig sim_config{.cache_bytes = cache_bytes,
                               .warmup_jobs = w.jobs.size() / 10};
    const CacheMetrics m =
        simulate(sim_config, w.catalog, *policy, w.jobs).metrics;
    metrics_table.add_row(
        {name, format_double(m.request_hit_ratio()),
         format_double(m.byte_miss_ratio()),
         format_bytes(static_cast<Bytes>(m.avg_bytes_moved_per_job()))});
  }
  std::cout << "Cache metrics (post-warm-up):\n";
  metrics_table.print(std::cout);

  // --- timed SRM view -----------------------------------------------------
  // Attribute files live on local tape; a third of the runs are replicated
  // only at a remote site.
  MassStorageSystem mss(default_tiers(), w.catalog);
  for (FileId id = 0; id < w.catalog.count(); ++id) {
    const std::size_t run = id / config.num_attributes;
    mss.place_file(id, run % 3 == 0 ? 2u : 1u);
  }

  std::cout << "\nTimed SRM service (tape + remote tiers, 4 parallel "
               "transfer streams):\n";
  TextTable srm_table({"policy", "throughput_jobs_per_h", "mean_response_s",
                       "data_staged"});
  for (const std::string name : {"optfb", "landlord"}) {
    std::vector<GridJob> jobs;
    double arrival = 0.0;
    for (const Request& r : w.jobs) {
      jobs.push_back(GridJob{r, arrival, /*service_s=*/3.0});
      arrival += 30.0;  // a new analysis every 30 s
    }
    PolicyContext context;
    context.catalog = &w.catalog;
    PolicyPtr policy = make_policy(name, context);
    SrmConfig srm_config{.cache_bytes = cache_bytes,
                         .transfers = TransferModel{.max_parallel = 4}};
    StorageResourceManager srm(srm_config, mss, *policy);
    const SrmReport report = srm.run(jobs);
    srm_table.add_row({name,
                       format_double(report.throughput_jobs_per_hour()),
                       format_double(report.response_s.mean()),
                       format_bytes(report.bytes_staged)});
  }
  srm_table.print(std::cout);
  std::cout << "\nBundle-aware replacement keeps whole analysis templates "
               "resident, so repeat analyses hit without re-staging from "
               "tape.\n";
  return 0;
}
