#include "common/fig67.hpp"

#include <iostream>
#include <vector>

#include "common/harness.hpp"

namespace fbc::bench {
namespace {

WorkloadConfig sweep_workload(std::size_t jobs, Popularity popularity,
                              std::size_t max_bundle_files,
                              double max_file_frac) {
  WorkloadConfig config;
  config.cache_bytes = 64 * MiB;
  config.num_files = 400;
  config.min_file_bytes = 16 * KiB;
  config.max_file_frac = max_file_frac;
  config.num_requests = 250;
  config.min_bundle_files = 1;
  config.max_bundle_files = max_bundle_files;
  config.num_jobs = jobs;
  config.popularity = popularity;
  return config;
}

}  // namespace

int run_fig67(const char* figure, double max_file_frac, int argc,
              char** argv) {
  CliParser cli(figure,
                std::string(figure) +
                    ": OptFileBundle vs Landlord byte miss ratio");
  add_common_options(cli);
  cli.parse(argc, argv);

  const std::size_t jobs = cli.get_u64("jobs");
  const auto seeds = make_seeds(cli.get_u64("seed"), cli.get_u64("seeds"));
  // Keep the cache within the paper's ~5-130 requests operating range:
  // with 10x larger files, 10x smaller bundles.
  const std::vector<std::size_t> bundle_sweep =
      max_file_frac > 0.05 ? std::vector<std::size_t>{1, 2, 3, 4, 5, 6}
                           : std::vector<std::size_t>{2, 4, 8, 12, 16, 24};

  for (Popularity popularity : {Popularity::Uniform, Popularity::Zipf}) {
    TextTable table({"max_bundle_files", "requests_per_cache",
                     "landlord_byte_miss", "optfb_byte_miss",
                     "improvement_pct"});
    for (std::size_t bundle : bundle_sweep) {
      const WorkloadConfig wconfig =
          sweep_workload(jobs, popularity, bundle, max_file_frac);
      // Cache size expressed in average requests, measured on the pool.
      const Workload probe = generate_workload(wconfig);
      const double per_cache = probe.requests_per_cache(wconfig.cache_bytes);

      RunSpec spec;
      spec.workload = wconfig;
      spec.sim.cache_bytes = wconfig.cache_bytes;
      spec.sim.warmup_jobs = default_warmup(jobs);

      spec.policy = "landlord";
      const Aggregate landlord = run_seeds(spec, seeds);
      spec.policy = "optfb";
      const Aggregate optfb = run_seeds(spec, seeds);

      const double improvement =
          landlord.byte_miss.mean() > 0.0
              ? 100.0 * (landlord.byte_miss.mean() - optfb.byte_miss.mean()) /
                    landlord.byte_miss.mean()
              : 0.0;
      table.add_row({std::to_string(bundle), format_double(per_cache, 3),
                     format_double(landlord.byte_miss.mean()),
                     format_double(optfb.byte_miss.mean()),
                     format_double(improvement, 3)});
    }
    std::cout << figure << (popularity == Popularity::Uniform ? "(a)" : "(b)")
              << ": " << to_string(popularity)
              << " requests, max file size = "
              << format_double(100.0 * max_file_frac, 2)
              << "% of cache (byte miss ratio, lower is better)\n";
    emit(cli, table);
  }
  std::cout << "Expectation (paper): OptFileBundle below Landlord at every "
               "point; the gap is widest for small files and Zipf.\n";
  return 0;
}

}  // namespace fbc::bench
