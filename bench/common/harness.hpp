// Shared sweep driver for the figure/table reproduction benches.
//
// Every bench declares a set of sweep points (a workload + simulator
// configuration) and a set of policies; the harness runs each
// (point, policy, seed) simulation -- fanning out across a thread pool --
// and aggregates the metrics the paper reports.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

namespace fbc::bench {

/// One simulation to run.
struct RunSpec {
  WorkloadConfig workload;
  SimulatorConfig sim;
  std::string policy = "optfb";
  /// Window length for optfb-window.
  std::uint64_t history_window_jobs = 1000;
  /// Queue-scheduling aging factor for optfb* policies (0 = off).
  double aging_factor = 0.0;
};

/// Aggregated over repetition seeds.
struct Aggregate {
  RunningStats byte_miss;     ///< byte miss ratio per run
  RunningStats request_hit;   ///< request-hit ratio per run
  RunningStats moved_mib;     ///< MiB moved into the cache per job
  RunningStats mean_wait;     ///< mean queue wait (services) per run
  RunningStats max_wait;      ///< worst queue wait per run
};

/// Runs one simulation (workload generated from spec.workload with its
/// seed) and returns the measured (post-warm-up) metrics.
[[nodiscard]] CacheMetrics run_one(const RunSpec& spec);

/// Runs `spec` once per seed (the seed replaces spec.workload.seed) and
/// aggregates. Runs serially; for sweep-level parallelism submit
/// independent run_seeds calls to a ThreadPool.
[[nodiscard]] Aggregate run_seeds(RunSpec spec,
                                  std::span<const std::uint64_t> seeds);

/// Derives `count` repetition seeds from a master seed.
[[nodiscard]] std::vector<std::uint64_t> make_seeds(std::uint64_t master,
                                                    std::size_t count);

/// Registers the options shared by all figure benches
/// (--jobs, --seeds, --seed, --csv, --json).
void add_common_options(CliParser& cli);

/// Emits a finished table honoring --json (JSON array of row objects,
/// the standard machine-readable bench format) and --csv.
void emit(const CliParser& cli, const TextTable& table);

/// Standard per-figure warm-up: 10% of the job stream.
[[nodiscard]] std::size_t default_warmup(std::size_t jobs);

}  // namespace fbc::bench
