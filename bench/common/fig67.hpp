// Shared driver for the Fig. 6 (small files) and Fig. 7 (large files)
// sweeps: OptFileBundle vs Landlord byte miss ratio across average
// request sizes, for uniform and Zipf popularity. The two figures differ
// only in the maximum file size relative to the cache.
#pragma once

namespace fbc::bench {

/// Runs the figure sweep and prints the two (a)/(b) tables.
/// `max_file_frac` is the maximum file size as a fraction of the cache
/// (0.01 reproduces Fig. 6, 0.10 reproduces Fig. 7). The bundle-size
/// sweep is chosen so the cache spans roughly 5-130 average requests --
/// the operating range of the paper's experiments -- which is why the
/// large-file figure uses smaller bundles.
int run_fig67(const char* figure, double max_file_frac, int argc,
              char** argv);

}  // namespace fbc::bench
