#include "common/harness.hpp"

#include <iostream>

#include "util/rng.hpp"

namespace fbc::bench {

CacheMetrics run_one(const RunSpec& spec) {
  const Workload w = generate_workload(spec.workload);
  PolicyContext context;
  context.catalog = &w.catalog;
  context.jobs = w.jobs;
  context.seed = spec.workload.seed ^ 0x9e3779b97f4a7c15ULL;
  context.history_window_jobs = spec.history_window_jobs;
  context.aging_factor = spec.aging_factor;
  PolicyPtr policy = make_policy(spec.policy, context);
  return simulate(spec.sim, w.catalog, *policy, w.jobs).metrics;
}

Aggregate run_seeds(RunSpec spec, std::span<const std::uint64_t> seeds) {
  Aggregate agg;
  for (std::uint64_t seed : seeds) {
    spec.workload.seed = seed;
    const CacheMetrics m = run_one(spec);
    agg.byte_miss.add(m.byte_miss_ratio());
    agg.request_hit.add(m.request_hit_ratio());
    agg.moved_mib.add(m.avg_bytes_moved_per_job() / (1024.0 * 1024.0));
    agg.mean_wait.add(m.mean_queue_wait());
    agg.max_wait.add(m.max_queue_wait());
  }
  return agg;
}

std::vector<std::uint64_t> make_seeds(std::uint64_t master,
                                      std::size_t count) {
  Rng rng(master);
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i) seeds[i] = rng.derive_seed(i);
  return seeds;
}

void add_common_options(CliParser& cli) {
  cli.add_option("jobs", "jobs per simulation run", "4000");
  cli.add_option("seeds", "repetition seeds per sweep point", "3");
  cli.add_option("seed", "master seed", "1");
  cli.add_flag("csv", "emit CSV instead of the aligned table");
  cli.add_flag("json", "emit a JSON array instead of the aligned table");
}

void emit(const CliParser& cli, const TextTable& table) {
  if (cli.get_flag("json")) {
    table.print_json(std::cout);
  } else if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n";
}

std::size_t default_warmup(std::size_t jobs) { return jobs / 10; }

}  // namespace fbc::bench
