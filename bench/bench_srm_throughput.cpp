// Section 6 (future work) extension: transfer- and processing-time-aware
// SRM service. Measures job throughput and response times for
// OptFileBundle vs Landlord when files live on realistic MSS tiers, and
// contrasts the bundle-at-a-time service model with one-file-at-a-time
// and a hybrid mix.
#include <iostream>
#include <vector>

#include "common/harness.hpp"
#include "grid/srm.hpp"
#include "grid/mss.hpp"
#include "util/rng.hpp"

using namespace fbc;
using namespace fbc::bench;

namespace {

std::vector<GridJob> make_jobs(const Workload& w, double arrival_gap_s,
                               double file_at_a_time_fraction,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<GridJob> jobs;
  jobs.reserve(w.jobs.size());
  double arrival = 0.0;
  for (const Request& r : w.jobs) {
    GridJob job;
    job.request = r;
    job.arrival_s = arrival;
    job.service_s = rng.uniform_double(1.0, 5.0);
    job.model = rng.bernoulli(file_at_a_time_fraction)
                    ? ServiceModel::FileAtATime
                    : ServiceModel::BundleAtATime;
    jobs.push_back(job);
    arrival += rng.uniform_double(0.0, 2.0 * arrival_gap_s);
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_srm_throughput",
                "SRM throughput/response time with MSS cost model");
  cli.add_option("jobs", "jobs per run", "1500");
  cli.add_option("seed", "master seed", "1");
  cli.add_flag("csv", "emit CSV");
  cli.parse(argc, argv);

  WorkloadConfig wconfig;
  wconfig.seed = cli.get_u64("seed");
  wconfig.cache_bytes = 32 * GiB;
  wconfig.num_files = 300;
  wconfig.min_file_bytes = 256 * MiB;
  wconfig.max_file_frac = 0.02;
  wconfig.num_requests = 150;
  wconfig.max_bundle_files = 6;
  wconfig.num_jobs = cli.get_u64("jobs");
  wconfig.popularity = Popularity::Zipf;
  const Workload w = generate_workload(wconfig);

  // Spread files over the three default tiers: 1/2 local tape, 1/3
  // remote, the rest on the fast disk pool.
  MassStorageSystem mss(default_tiers(), w.catalog);
  Rng placement_rng(wconfig.seed + 17);
  for (FileId id = 0; id < w.catalog.count(); ++id) {
    const double roll = placement_rng.uniform_double();
    mss.place_file(id, roll < 0.5 ? 1u : (roll < 0.83 ? 2u : 0u));
  }

  TextTable table({"policy", "service_mix", "throughput_jobs_per_h",
                   "mean_response_s", "p95_response_s", "data_staged",
                   "request_hit_pct"});

  struct Case {
    const char* policy;
    const char* label;
    double file_at_a_time_fraction;
  };
  const std::vector<Case> cases{
      {"optfb", "bundle", 0.0},     {"landlord", "bundle", 0.0},
      {"lru", "bundle", 0.0},       {"optfb", "hybrid-30%file", 0.3},
      {"landlord", "hybrid-30%file", 0.3},
  };

  for (const Case& c : cases) {
    const std::vector<GridJob> jobs =
        make_jobs(w, /*arrival_gap_s=*/20.0, c.file_at_a_time_fraction,
                  wconfig.seed + 99);
    PolicyContext context;
    context.catalog = &w.catalog;
    PolicyPtr policy = make_policy(c.policy, context);
    SrmConfig config{.cache_bytes = wconfig.cache_bytes,
                     .transfers = TransferModel{.max_parallel = 4}};
    StorageResourceManager srm(config, mss, *policy);
    const SrmReport report = srm.run(jobs);

    std::vector<double> responses;
    responses.reserve(report.outcomes.size());
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
      responses.push_back(report.outcomes[i].finish_s - jobs[i].arrival_s);
    }
    table.add_row(
        {c.policy, c.label,
         format_double(report.throughput_jobs_per_hour()),
         format_double(report.response_s.mean()),
         format_double(quantile(responses, 0.95)),
         format_bytes(report.bytes_staged),
         format_double(100.0 * static_cast<double>(report.request_hits) /
                       static_cast<double>(jobs.size()))});
  }

  std::cout << "SRM service with MSS tiers (tape/remote/disk), Zipf "
               "workload\n";
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nExpectation: OptFileBundle stages less data, so it sees "
               "higher throughput and lower response times than per-file "
               "policies under the same arrival stream.\n";
  return 0;
}
