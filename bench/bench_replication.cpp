// Replication extension bench (paper §1 lists "strategic data
// replication" among the grid's performance levers): mean response time
// and staged volume as the local replica budget grows, for OptFileBundle
// vs Landlord, with popularity-greedy replica placement.
#include <iostream>
#include <vector>

#include "common/harness.hpp"
#include "grid/replica.hpp"
#include "grid/srm.hpp"
#include "util/rng.hpp"

using namespace fbc;
using namespace fbc::bench;

int main(int argc, char** argv) {
  CliParser cli("bench_replication",
                "Response time vs replica budget (greedy placement)");
  cli.add_option("jobs", "jobs per run", "1200");
  cli.add_option("seed", "master seed", "1");
  cli.add_flag("csv", "emit CSV");
  cli.parse(argc, argv);

  WorkloadConfig wconfig;
  wconfig.seed = cli.get_u64("seed");
  wconfig.cache_bytes = 16 * GiB;
  wconfig.num_files = 400;
  wconfig.min_file_bytes = 128 * MiB;
  wconfig.max_file_frac = 0.02;
  wconfig.num_requests = 250;
  wconfig.max_bundle_files = 5;
  wconfig.num_jobs = cli.get_u64("jobs");
  wconfig.popularity = Popularity::Zipf;
  const Workload w = generate_workload(wconfig);

  // Per-file access counts over the whole stream drive the placement (in
  // deployment these come from SRM logs).
  std::vector<std::uint64_t> access_counts(w.catalog.count(), 0);
  for (const Request& job : w.jobs) {
    for (FileId id : job.files) ++access_counts[id];
  }

  std::vector<GridJob> jobs;
  Rng arrival_rng(wconfig.seed + 5);
  double arrival = 0.0;
  for (const Request& r : w.jobs) {
    jobs.push_back(GridJob{r, arrival, arrival_rng.uniform_double(1.0, 4.0)});
    arrival += arrival_rng.uniform_double(0.0, 30.0);
  }

  TextTable table({"replica_budget", "policy", "mean_response_s",
                   "data_staged", "frac_from_replicas"});
  const Bytes total = w.catalog.total_bytes();
  for (double budget_frac : {0.0, 0.1, 0.25, 0.5}) {
    const Bytes budget = static_cast<Bytes>(
        budget_frac * static_cast<double>(total));
    for (const std::string policy_name : {"optfb", "landlord"}) {
      std::vector<ReplicaSite> sites{
          ReplicaSite{"origin-wan", StorageTier{"wan", 2.0, 25.0 * MiB}, 0},
          ReplicaSite{"local-pool",
                      StorageTier{"disk", 0.05, 400.0 * MiB}, budget},
      };
      ReplicaManager manager(sites, w.catalog);
      manager.replicate_by_popularity(access_counts);

      // Fraction of demanded bytes servable from the local replica pool.
      Bytes replicated_demand = 0, total_demand = 0;
      for (const Request& r : w.jobs) {
        for (FileId id : r.files) {
          const Bytes size = w.catalog.size_of(id);
          total_demand += size;
          if (manager.has_replica(id, 1)) replicated_demand += size;
        }
      }

      PolicyContext context;
      context.catalog = &w.catalog;
      PolicyPtr policy = make_policy(policy_name, context);
      SrmConfig config{.cache_bytes = wconfig.cache_bytes,
                       .transfers = TransferModel{.max_parallel = 4}};
      StorageResourceManager srm(config, manager, *policy);
      const SrmReport report = srm.run(jobs);

      table.add_row(
          {format_double(100.0 * budget_frac, 3) + "%", policy_name,
           format_double(report.response_s.mean()),
           format_bytes(report.bytes_staged),
           format_double(static_cast<double>(replicated_demand) /
                         static_cast<double>(total_demand))});
    }
  }

  std::cout << "Replication sweep: local replica budget as a fraction of "
               "the dataset (" << format_bytes(total) << ")\n";
  emit(cli, table);
  std::cout << "Expectations: response time falls as the replica budget "
               "grows; bundle-aware caching and replication compound.\n";
  return 0;
}
