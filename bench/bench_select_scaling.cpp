// Per-miss selection cost: Reference vs Incremental engine, sweeping
// history length x cache size (the paper's §5.2 scaling concern).
//
// For each sweep point the same workload is replayed twice -- once per
// engine -- and the deterministic per-decision effort counters
// (candidates scanned, entries rescored, heap ops; see SelectionCost) are
// reported next to wall-clock ns/decision. The engines must agree on the
// byte miss ratio bit for bit; the bench aborts if they do not.
//
// The claim to verify (ISSUE 2): the reference engine's per-miss work
// grows ~linearly with the history length, the incremental engine's
// rescored-entry count stays sublinear. scripts/check_bench_select_scaling.py
// gates CI on the emitted BENCH_select_scaling.json.
//
//   bench_select_scaling                    # full sweep
//   bench_select_scaling --smoke --json     # CI: quick sweep + JSON gate file
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/harness.hpp"

using namespace fbc;
using namespace fbc::bench;

namespace {

struct EngineRun {
  SelectionCost cost;
  double byte_miss = 0.0;
  double ns_per_decision = 0.0;
};

struct Point {
  std::string policy;
  std::size_t history_entries = 0;  ///< request-pool size == |L(R)| plateau
  Bytes cache_bytes = 0;
  EngineRun engine[2];  ///< indexed by SelectEngine
};

WorkloadConfig make_workload(std::size_t pool, Bytes cache, std::size_t jobs,
                             std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.cache_bytes = cache;
  config.num_files = 300;
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.01;
  config.num_requests = pool;
  config.min_bundle_files = 1;
  config.max_bundle_files = 8;
  config.num_jobs = jobs;
  config.popularity = Popularity::Zipf;
  return config;
}

EngineRun run_engine(const Workload& workload, const std::string& policy_name,
                     SelectEngine engine, Bytes cache, std::uint64_t seed) {
  PolicyContext context;
  context.catalog = &workload.catalog;
  context.jobs = workload.jobs;
  context.seed = seed;
  context.select_engine = engine;
  PolicyPtr policy = make_policy(policy_name, context);

  SimulatorConfig sim;
  sim.cache_bytes = cache;
  sim.warmup_jobs = 0;  // count every decision

  const auto start = std::chrono::steady_clock::now();
  const SimulationResult result =
      simulate(sim, workload.catalog, *policy, workload.jobs);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EngineRun run;
  run.cost = result.metrics.selection_cost();
  run.byte_miss = result.metrics.byte_miss_ratio();
  if (run.cost.decisions > 0) {
    run.ns_per_decision =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()) /
        static_cast<double>(run.cost.decisions);
  }
  return run;
}

double per_decision(std::uint64_t total, std::uint64_t decisions) {
  return decisions == 0 ? 0.0
                        : static_cast<double>(total) /
                              static_cast<double>(decisions);
}

std::string json_number(double v) {
  std::ostringstream oss;
  oss << v;
  return oss.str();
}

void write_json(const std::string& path, std::span<const Point> points) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n  \"bench\": \"select_scaling\",\n  \"points\": [\n";
  for (std::size_t p = 0; p < points.size(); ++p) {
    const Point& point = points[p];
    out << "    {\"policy\": \"" << point.policy
        << "\", \"history_entries\": " << point.history_entries
        << ", \"cache_mib\": " << point.cache_bytes / MiB
        << ", \"engines\": {";
    for (int e = 0; e < 2; ++e) {
      const auto engine = static_cast<SelectEngine>(e);
      const EngineRun& run = point.engine[e];
      out << "\"" << to_string(engine) << "\": {"
          << "\"decisions\": " << run.cost.decisions
          << ", \"scanned_per_decision\": "
          << json_number(
                 per_decision(run.cost.candidates_scanned, run.cost.decisions))
          << ", \"rescored_per_decision\": "
          << json_number(
                 per_decision(run.cost.entries_rescored, run.cost.decisions))
          << ", \"heap_ops_per_decision\": "
          << json_number(per_decision(run.cost.heap_ops, run.cost.decisions))
          << ", \"ns_per_decision\": " << json_number(run.ns_per_decision)
          << ", \"byte_miss\": " << json_number(run.byte_miss) << "}";
      if (e == 0) out << ", ";
    }
    out << "}}";
    if (p + 1 < points.size()) out << ",";
    out << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_select_scaling",
                "Per-miss selection cost: Reference vs Incremental engine "
                "over history length x cache size");
  cli.add_option("jobs", "jobs per simulation run", "3000");
  cli.add_option("seed", "workload seed", "1");
  cli.add_option("out", "JSON output path (with --json)",
                 "BENCH_select_scaling.json");
  cli.add_flag("smoke", "quick CI sweep (fewer points, fewer jobs)");
  cli.add_flag("json", "also write the machine-readable JSON gate file");
  cli.add_flag("csv", "emit CSV instead of the aligned table");

  try {
    cli.parse(argc, argv);
    const bool smoke = cli.get_flag("smoke");
    const std::size_t jobs =
        cli.was_set("jobs") ? cli.get_u64("jobs") : (smoke ? 800 : 3000);
    const std::uint64_t seed = cli.get_u64("seed");

    const std::vector<std::size_t> pools =
        smoke ? std::vector<std::size_t>{100, 400}
              : std::vector<std::size_t>{100, 200, 400, 800, 1600};
    const std::vector<Bytes> caches =
        smoke ? std::vector<Bytes>{64 * MiB}
              : std::vector<Bytes>{32 * MiB, 128 * MiB};
    // optfb: CacheResident candidates (the paper's recommendation) --
    // the incremental engine additionally avoids the full history scan.
    // optfb-full: untruncated history, the §5.2 worst case.
    const std::vector<std::string> policies{"optfb", "optfb-full"};

    std::vector<Point> points;
    for (const std::string& policy : policies) {
      for (std::size_t pool : pools) {
        for (Bytes cache : caches) {
          const Workload workload =
              generate_workload(make_workload(pool, cache, jobs, seed));
          Point point;
          point.policy = policy;
          point.history_entries = pool;
          point.cache_bytes = cache;
          for (int e = 0; e < 2; ++e) {
            point.engine[e] = run_engine(
                workload, policy, static_cast<SelectEngine>(e), cache, seed);
          }
          const EngineRun& ref = point.engine[0];
          const EngineRun& inc = point.engine[1];
          if (ref.byte_miss != inc.byte_miss ||
              ref.cost.decisions != inc.cost.decisions) {
            std::cerr << "bench_select_scaling: ENGINES DIVERGED at policy="
                      << policy << " pool=" << pool
                      << " cache=" << format_bytes(cache)
                      << " (byte_miss " << ref.byte_miss << " vs "
                      << inc.byte_miss << ", decisions "
                      << ref.cost.decisions << " vs " << inc.cost.decisions
                      << ")\n";
            return 1;
          }
          points.push_back(std::move(point));
        }
      }
    }

    TextTable table({"policy", "history", "cache", "engine", "decisions",
                     "scanned/dec", "rescored/dec", "heap/dec", "ns/dec",
                     "byte_miss"});
    for (const Point& point : points) {
      for (int e = 0; e < 2; ++e) {
        const EngineRun& run = point.engine[e];
        table.add_row(
            {point.policy, std::to_string(point.history_entries),
             format_bytes(point.cache_bytes),
             to_string(static_cast<SelectEngine>(e)),
             std::to_string(run.cost.decisions),
             format_double(
                 per_decision(run.cost.candidates_scanned, run.cost.decisions)),
             format_double(
                 per_decision(run.cost.entries_rescored, run.cost.decisions)),
             format_double(
                 per_decision(run.cost.heap_ops, run.cost.decisions)),
             std::to_string(
                 static_cast<std::uint64_t>(run.ns_per_decision)),
             format_double(run.byte_miss)});
      }
    }
    std::cout << "Per-miss selection cost by engine (byte_miss must match "
                 "between engines at every point)\n";
    if (cli.get_flag("csv")) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }

    if (cli.get_flag("json")) {
      write_json(cli.get_string("out"), points);
      std::cout << "wrote " << cli.get_string("out") << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_select_scaling: " << e.what() << "\n";
    return 1;
  }
}
