// Ablation: the OptFileBundle design choices called out in DESIGN.md,
// measured end-to-end on the full simulation (not just per-instance as in
// bench_approx_ratio):
//   * greedy variant (basic / resort / seeded1),
//   * history truncation (cache-resident vs full+prefetch),
//   * value model (popularity counter vs byte-weighted).
// Reported against Landlord and the clairvoyant look-ahead bound.
#include <iostream>
#include <vector>

#include "common/harness.hpp"

using namespace fbc;
using namespace fbc::bench;

namespace {

WorkloadConfig base_workload(std::size_t jobs, Popularity popularity) {
  WorkloadConfig config;
  config.cache_bytes = 64 * MiB;
  config.num_files = 300;
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.01;
  config.num_requests = 200;
  config.min_bundle_files = 1;
  config.max_bundle_files = 8;
  config.num_jobs = jobs;
  config.popularity = popularity;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_ablation_variants",
                "End-to-end ablation of OptFileBundle design choices");
  add_common_options(cli);
  cli.parse(argc, argv);

  const std::size_t jobs = cli.get_u64("jobs");
  const auto seeds = make_seeds(cli.get_u64("seed"), cli.get_u64("seeds"));

  const std::vector<std::string> policies{
      "optfb-basic",   // Algorithm 1 verbatim
      "optfb",         // + the paper's "Note" (resort)
      "optfb-seeded1", // + 1-subset seeding
      "optfb-bytes",   // byte-weighted values (extension)
      "optfb-full",    // untruncated history + step-3 prefetch
      "landlord",      // the paper's comparison target
      "lookahead",     // clairvoyant per-file reference bound
  };

  for (Popularity popularity : {Popularity::Uniform, Popularity::Zipf}) {
    TextTable table({"policy", "byte_miss", "request_hit", "moved_MiB_per_job",
                     "ci95_byte_miss"});
    for (const std::string& policy : policies) {
      RunSpec spec;
      spec.policy = policy;
      spec.workload = base_workload(jobs, popularity);
      spec.sim.cache_bytes = 64 * MiB;
      spec.sim.warmup_jobs = default_warmup(jobs);
      const Aggregate agg = run_seeds(spec, seeds);
      table.add_row({policy, format_double(agg.byte_miss.mean()),
                     format_double(agg.request_hit.mean()),
                     format_double(agg.moved_mib.mean()),
                     format_double(agg.byte_miss.ci95_halfwidth(), 2)});
    }
    std::cout << "Ablation (" << to_string(popularity)
              << " popularity): OptFileBundle design choices\n";
    emit(cli, table);
  }
  std::cout << "Expectations: resort <= basic; seeded1 <= resort (byte miss);"
               " all optfb variants beat landlord; lookahead bounds from "
               "below.\n";
  return 0;
}
