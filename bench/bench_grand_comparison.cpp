// Grand comparison: every registered online policy x popularity x cache
// scale, run through the declarative experiment framework
// (src/analysis) with repetition seeds and thread-pool fan-out, reported
// as mean +- 95% CI byte miss ratios.
//
// This is the kitchen-sink leaderboard the paper's pairwise
// OptFileBundle-vs-Landlord plots imply; the clairvoyant lookahead bound
// is included as the floor.
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "util/cli.hpp"
#include "workload/workload.hpp"

using namespace fbc;

namespace {

WorkloadConfig workload_for(const std::string& popularity,
                            std::uint64_t seed, std::size_t jobs) {
  WorkloadConfig config;
  config.seed = seed;
  config.cache_bytes = 64 * MiB;
  config.num_files = 300;
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.01;
  config.num_requests = 200;
  config.max_bundle_files = 8;
  config.num_jobs = jobs;
  config.popularity =
      popularity == "zipf" ? Popularity::Zipf : Popularity::Uniform;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_grand_comparison",
                "All policies x popularity x cache scale leaderboard");
  cli.add_option("jobs", "jobs per simulation", "3000");
  cli.add_option("seeds", "repetitions per point", "3");
  cli.add_option("seed", "master seed", "1");
  cli.add_option("threads", "worker threads (0 = hardware)", "0");
  cli.add_flag("csv", "emit CSV");
  cli.parse(argc, argv);
  const std::size_t jobs = cli.get_u64("jobs");

  ExperimentGrid grid;
  grid.add_factor("policy",
                  {"optfb", "optfb-basic", "optfb-bytes", "landlord",
                   "landlord-size", "lru", "lru-2", "lfu", "fifo",
                   "gds-unit", "gdsf", "random", "lookahead"});
  grid.add_factor("popularity", {"uniform", "zipf"});
  grid.add_factor("cache_scale", {"0.5", "1", "2"});

  ExperimentOptions options;
  options.repetitions = cli.get_u64("seeds");
  options.master_seed = cli.get_u64("seed");
  options.threads = cli.get_u64("threads");

  const ResultFrame frame = run_experiment(
      grid, options,
      [jobs](const ExperimentPoint& point, std::uint64_t seed) {
        const WorkloadConfig wconfig =
            workload_for(point.at("popularity"), seed, jobs);
        const Workload w = generate_workload(wconfig);
        PolicyContext context;
        context.catalog = &w.catalog;
        context.jobs = w.jobs;
        context.seed = seed;
        PolicyPtr policy = make_policy(point.at("policy"), context);
        const double scale = std::stod(point.at("cache_scale"));
        SimulatorConfig config{
            .cache_bytes = static_cast<Bytes>(
                scale * static_cast<double>(wconfig.cache_bytes)),
            .warmup_jobs = jobs / 10};
        const CacheMetrics m =
            simulate(config, w.catalog, *policy, w.jobs).metrics;
        return Measurements{{"byte_miss", m.byte_miss_ratio()},
                            {"request_hit", m.request_hit_ratio()}};
      });

  for (const std::string popularity : {"uniform", "zipf"}) {
    ResultFrame view = frame.filter("popularity", popularity)
                           .aggregate({"policy", "cache_scale"}, "byte_miss",
                                      {Agg::Mean, Agg::Ci95});
    std::cout << "Byte miss ratio, " << popularity
              << " popularity (mean over " << options.repetitions
              << " seeds):\n";
    if (cli.get_flag("csv")) {
      view.print_csv(std::cout);
    } else {
      view.print(std::cout);
    }
    std::cout << "\n";
  }
  std::cout << "Expectations: lookahead floors every column; optfb leads "
               "the online policies under Zipf; random/fifo trail.\n";
  return 0;
}
