// Fig. 8 reproduction: effect of varying the cache size on the average
// volume of data moved into the cache per request, for OptFileBundle vs
// Landlord under uniform and Zipf popularity.
//
// The workload (file sizes, bundles) is generated against a reference
// cache size; the simulated cache is then swept across multiples of it,
// and reported in the paper's unit of "requests that fit in the cache".
#include <iostream>
#include <vector>

#include "common/harness.hpp"

using namespace fbc;
using namespace fbc::bench;

namespace {

WorkloadConfig base_workload(std::size_t jobs, Popularity popularity) {
  WorkloadConfig config;
  config.cache_bytes = 64 * MiB;  // reference size for file scaling
  config.num_files = 800;
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.01;
  config.num_requests = 400;
  config.min_bundle_files = 1;
  config.max_bundle_files = 8;
  config.num_jobs = jobs;
  config.popularity = popularity;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_fig8_cache_size",
                "Fig. 8: data volume moved per request vs cache size");
  add_common_options(cli);
  cli.parse(argc, argv);

  const std::size_t jobs = cli.get_u64("jobs");
  const auto seeds = make_seeds(cli.get_u64("seed"), cli.get_u64("seeds"));
  const std::vector<double> cache_scale{0.25, 0.5, 1.0, 2.0, 4.0};

  for (Popularity popularity : {Popularity::Uniform, Popularity::Zipf}) {
    const WorkloadConfig wconfig = base_workload(jobs, popularity);
    const Workload probe = generate_workload(wconfig);

    TextTable table({"cache_bytes", "requests_per_cache",
                     "landlord_MiB_per_req", "optfb_MiB_per_req",
                     "landlord_byte_miss", "optfb_byte_miss"});
    for (double scale : cache_scale) {
      const Bytes cache_bytes = static_cast<Bytes>(
          scale * static_cast<double>(wconfig.cache_bytes));
      const double per_cache = probe.requests_per_cache(cache_bytes);

      RunSpec spec;
      spec.workload = wconfig;
      spec.sim.cache_bytes = cache_bytes;
      spec.sim.warmup_jobs = default_warmup(jobs);

      spec.policy = "landlord";
      const Aggregate landlord = run_seeds(spec, seeds);
      spec.policy = "optfb";
      const Aggregate optfb = run_seeds(spec, seeds);

      table.add_row({format_bytes(cache_bytes), format_double(per_cache, 3),
                     format_double(landlord.moved_mib.mean()),
                     format_double(optfb.moved_mib.mean()),
                     format_double(landlord.byte_miss.mean()),
                     format_double(optfb.byte_miss.mean())});
    }
    std::cout << "Fig. 8 (" << to_string(popularity)
              << "): average data volume moved into the cache per request\n";
    emit(cli, table);
  }
  std::cout << "Expectation (paper): volume moved per request falls as the "
               "cache grows; OptFileBundle moves less than Landlord "
               "everywhere, most clearly under Zipf.\n";
  return 0;
}
