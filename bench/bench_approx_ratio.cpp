// Section 4 ablation: empirical approximation quality of OptCacheSelect
// against the exact (branch-and-bound) FBC optimum on random small
// instances, annotated with the proven floors 1/2(1-e^{-1/d}) (Theorem
// 4.1) and (1-e^{-1/d}) (the Seeded improvement).
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/harness.hpp"
#include "core/bounds.hpp"
#include "core/opt_cache_select.hpp"
#include "util/rng.hpp"

using namespace fbc;
using namespace fbc::bench;

namespace {

struct Instance {
  FileCatalog catalog;
  std::vector<Request> requests;
  std::vector<double> values;
  std::vector<std::uint32_t> degrees;
  Bytes capacity = 0;

  explicit Instance(std::uint64_t seed, std::size_t max_requests) {
    Rng rng(seed);
    const std::size_t num_files = 5 + rng.index(8);
    const std::size_t num_requests = 4 + rng.index(max_requests - 3);
    for (std::size_t f = 0; f < num_files; ++f) {
      catalog.add_file(rng.uniform_u64(1, 30));
    }
    for (std::size_t r = 0; r < num_requests; ++r) {
      const std::size_t k = 1 + rng.index(std::min<std::size_t>(4, num_files));
      const auto picked = rng.sample_without_replacement(num_files, k);
      std::vector<FileId> files;
      for (std::size_t idx : picked) files.push_back(static_cast<FileId>(idx));
      requests.emplace_back(std::move(files));
      values.push_back(static_cast<double>(rng.uniform_u64(1, 12)));
    }
    degrees.assign(catalog.count(), 0);
    for (const Request& r : requests) {
      for (FileId id : r.files) ++degrees[id];
    }
    capacity = 1 + rng.uniform_u64(0, catalog.total_bytes());
  }

  [[nodiscard]] std::vector<SelectionItem> items() const {
    std::vector<SelectionItem> out;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      out.push_back(SelectionItem{&requests[i], values[i]});
    }
    return out;
  }
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_approx_ratio",
                "Empirical OptCacheSelect approximation ratio vs exact");
  cli.add_option("instances", "number of random instances", "200");
  cli.add_option("max-requests", "max requests per instance", "14");
  cli.add_option("seed", "master seed", "1");
  cli.add_flag("csv", "emit CSV");
  cli.parse(argc, argv);

  const std::size_t instances = cli.get_u64("instances");
  const std::size_t max_requests = cli.get_u64("max-requests");
  Rng master(cli.get_u64("seed"));

  struct VariantStats {
    SelectVariant variant;
    RunningStats ratio;
    double worst = 2.0;
    std::size_t optimal_hits = 0;
  };
  std::vector<VariantStats> stats{{SelectVariant::Basic, {}, 2.0, 0},
                                  {SelectVariant::Resort, {}, 2.0, 0},
                                  {SelectVariant::Seeded1, {}, 2.0, 0},
                                  {SelectVariant::Seeded2, {}, 2.0, 0}};
  RunningStats degree_stats;
  std::uint32_t max_d = 0;

  for (std::size_t i = 0; i < instances; ++i) {
    const Instance inst(master.derive_seed(i), max_requests);
    const auto items = inst.items();
    const SelectionResult exact =
        exact_select(items, inst.catalog, inst.capacity);
    if (exact.total_value <= 0.0) continue;
    const std::uint32_t d = max_file_degree(items);
    degree_stats.add(d);
    max_d = std::max(max_d, d);

    OptCacheSelect selector(inst.catalog, inst.degrees);
    for (VariantStats& vs : stats) {
      const SelectionResult greedy =
          selector.select(items, inst.capacity, vs.variant);
      const double ratio = greedy.total_value / exact.total_value;
      vs.ratio.add(ratio);
      vs.worst = std::min(vs.worst, ratio);
      if (ratio >= 1.0 - 1e-9) ++vs.optimal_hits;
    }
  }

  TextTable table({"variant", "mean_ratio", "worst_ratio", "optimal_found_pct",
                   "proven_floor_at_max_d"});
  for (const VariantStats& vs : stats) {
    const double floor = vs.variant == SelectVariant::Basic ||
                                 vs.variant == SelectVariant::Resort
                             ? greedy_bound_factor(max_d)
                             : seeded_bound_factor(max_d);
    const double optimal_pct =
        vs.ratio.count() == 0
            ? 0.0
            : 100.0 * static_cast<double>(vs.optimal_hits) /
                  static_cast<double>(vs.ratio.count());
    table.add_row({to_string(vs.variant), format_double(vs.ratio.mean()),
                   format_double(vs.worst), format_double(optimal_pct, 4),
                   format_double(floor)});
  }
  std::cout << "Empirical approximation ratio of OptCacheSelect vs exact "
               "optimum (" << degree_stats.count() << " instances, max file "
               "degree up to " << max_d << ")\n";
  emit(cli, table);
  std::cout << "Expectation: every worst_ratio is far above its proven "
               "floor; Seeded variants dominate the plain greedy.\n";
  return 0;
}
