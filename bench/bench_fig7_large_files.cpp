// Fig. 7 reproduction: byte miss ratio of OptFileBundle vs Landlord for
// LARGE files (max file size = 10% of the cache); otherwise identical to
// the Fig. 6 sweep. See common/fig67.cpp.
#include "common/fig67.hpp"

int main(int argc, char** argv) {
  return fbc::bench::run_fig67("fig7_large_files", /*max_file_frac=*/0.10,
                               argc, argv);
}
