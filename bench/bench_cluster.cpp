// Serving-cluster scaling bench: aggregate acquire/release throughput of
// a ClusterRouter fronting N in-process BundleServer shards, driven
// directly through the ServingEndpoint interface (no sockets), so the
// measured quantity is the serving stack itself -- router placement,
// per-shard admission, policy eviction work -- not loopback TCP.
//
// The N=1 configuration runs the same router code path over a single
// shard, so the N-shard speedup isolates what sharding buys: N
// independent admission locks and N policy instances evicting in
// parallel. scripts/check_bench_cluster.py gates the N=4 / N=1 aggregate
// throughput ratio (interleaved best-of pairs, same flags otherwise).
//
//   bench_cluster --shards=4 --connections=16 -n 40000 --json
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/router.hpp"
#include "cluster/shard.hpp"
#include "common/harness.hpp"
#include "grid/mss.hpp"
#include "service/endpoint.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

using namespace fbc;

namespace {

using Clock = std::chrono::steady_clock;

/// Tallies of one driver thread.
struct WorkerResult {
  std::vector<double> latencies_ms;
  std::uint64_t ok = 0;
  std::uint64_t hits = 0;
  std::uint64_t failed = 0;
  std::uint64_t queue_retries = 0;
};

/// Replays job indices i with i % connections == worker against the
/// endpoint, releasing each lease as soon as it is granted. QueueFull is
/// backpressure, not failure: back off briefly and retry a bounded
/// number of times.
void run_worker(service::ServingEndpoint* endpoint, const Workload& workload,
                std::size_t worker, std::size_t connections,
                std::size_t total_requests, WorkerResult* out) {
  constexpr int kMaxQueueRetries = 1000;
  for (std::size_t i = worker; i < total_requests; i += connections) {
    const Request& job = workload.jobs[i % workload.jobs.size()];
    const Clock::time_point start = Clock::now();
    service::AcquireResult r = endpoint->acquire(job);
    for (int retry = 0;
         r.status == service::AcquireStatus::QueueFull &&
         retry < kMaxQueueRetries;
         ++retry) {
      ++out->queue_retries;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      r = endpoint->acquire(job);
    }
    if (r.status != service::AcquireStatus::Ok) {
      ++out->failed;
      continue;
    }
    const std::chrono::duration<double, std::milli> lat =
        Clock::now() - start;
    out->latencies_ms.push_back(lat.count());
    ++out->ok;
    if (r.request_hit) ++out->hits;
    if (!endpoint->release(r.lease)) ++out->failed;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-n") arg = "--requests";
    args.push_back(std::move(arg));
  }

  CliParser cli("bench_cluster",
                "Aggregate serving throughput vs shard count");
  cli.add_option("shards", "cluster shard count", "4");
  cli.add_option("placement", "file placement: hash|affinity", "affinity");
  cli.add_option("vnodes", "hash-ring virtual nodes per shard", "64");
  cli.add_option("spill-threshold",
                 "bundle-affinity spill fraction of shard capacity", "0.5");
  cli.add_option("connections", "concurrent driver threads", "16");
  cli.add_option("requests", "total acquire requests (-n)", "40000");
  cli.add_option("cache", "per-shard cache bytes", "4194304");
  cli.add_option("policy", "per-shard replacement policy", "optfb");
  cli.add_option("seed", "workload seed", "42");
  cli.add_flag("json", "emit the report as JSON");
  cli.add_flag("csv", "emit the report as CSV");

  try {
    cli.parse(args);
    const auto shard_count = static_cast<std::uint32_t>(cli.get_u64("shards"));
    const std::size_t connections = cli.get_u64("connections");
    const std::size_t total_requests = cli.get_u64("requests");
    if (connections == 0) throw std::invalid_argument("need --connections>0");

    // Size the workload against the aggregate capacity so every shard
    // count sees the same per-capacity pressure: ~6x the aggregate cache
    // in distinct bytes keeps the eviction path (the CPU-heavy part of
    // admission) hot without making every job a full restage.
    const Bytes shard_cache = cli.get_u64("cache");
    WorkloadConfig wconfig;
    wconfig.seed = cli.get_u64("seed");
    wconfig.cache_bytes = shard_cache * shard_count;
    wconfig.num_files = 600;
    wconfig.min_file_bytes = wconfig.cache_bytes / 100;
    wconfig.max_file_frac = 0.02;
    wconfig.num_requests = 400;
    wconfig.min_bundle_files = 1;
    wconfig.max_bundle_files = 4;
    wconfig.num_jobs = 4000;
    wconfig.popularity = Popularity::Zipf;
    wconfig.zipf_alpha = 0.8;
    const Workload workload = generate_workload(wconfig);

    service::ServiceConfig config;
    config.cache_bytes = shard_cache;
    config.policy = cli.get_string("policy");
    config.time_scale = 0.0;  // no simulated staging sleeps: CPU-bound
    config.seed = wconfig.seed;

    cluster::ClusterConfig cluster_config;
    cluster_config.shards = shard_count;
    cluster_config.placement = cluster::parse_placement(
        cli.get_string("placement"));
    cluster_config.vnodes = static_cast<std::uint32_t>(cli.get_u64("vnodes"));
    cluster_config.spill_threshold = cli.get_double("spill-threshold");

    MassStorageSystem mss(default_tiers(), workload.catalog);
    std::vector<std::unique_ptr<service::BundleServer>> servers;
    std::vector<std::unique_ptr<cluster::Shard>> shards;
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      service::ServiceConfig shard_config = config;
      shard_config.shard_id = s;
      servers.push_back(
          std::make_unique<service::BundleServer>(shard_config, mss));
      shards.push_back(std::make_unique<cluster::LocalShard>(*servers.back()));
    }
    cluster::ClusterRouter router(cluster_config, workload.catalog,
                                  config.cache_bytes, std::move(shards));

    std::vector<WorkerResult> results(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    const auto wall_start = Clock::now();
    for (std::size_t w = 0; w < connections; ++w)
      threads.emplace_back(run_worker, &router, std::cref(workload), w,
                           connections, total_requests, &results[w]);
    for (std::thread& t : threads) t.join();
    const std::chrono::duration<double> wall = Clock::now() - wall_start;

    WorkerResult total;
    for (WorkerResult& r : results) {
      total.ok += r.ok;
      total.hits += r.hits;
      total.failed += r.failed;
      total.queue_retries += r.queue_retries;
      total.latencies_ms.insert(total.latencies_ms.end(),
                                r.latencies_ms.begin(), r.latencies_ms.end());
    }

    // Post-run invariants: every shard audit clean, no scatter leases
    // outstanding. A bench that leaks leases reports garbage throughput.
    int violations = 0;
    for (std::size_t s = 0; s < router.info().shard_count; ++s)
      for (const std::string& v :
           dynamic_cast<cluster::LocalShard&>(router.shard(s))
               .server()
               .audit()) {
        std::cerr << "bench_cluster: shard " << s << ": " << v << "\n";
        ++violations;
      }
    if (router.scatter_leases() != 0) {
      std::cerr << "bench_cluster: " << router.scatter_leases()
                << " scatter leases outstanding\n";
      ++violations;
    }

    const service::ServiceStats stats = router.stats();
    const double wall_s = std::max(wall.count(), 1e-9);
    TextTable table({"shards", "placement", "policy", "connections",
                     "requests", "ok", "failed", "request_hit_pct",
                     "queue_retries", "evictions", "throughput_rps", "p50_ms",
                     "p99_ms"});
    table.add_row(
        {std::to_string(shard_count), cli.get_string("placement"),
         config.policy, std::to_string(connections),
         std::to_string(total_requests), std::to_string(total.ok),
         std::to_string(total.failed),
         format_double(total.ok == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(total.hits) /
                                 static_cast<double>(total.ok)),
         std::to_string(total.queue_retries), std::to_string(stats.evictions),
         format_double(static_cast<double>(total.ok) / wall_s),
         format_double(quantile(total.latencies_ms, 0.50)),
         format_double(quantile(total.latencies_ms, 0.99))});
    if (cli.get_flag("json")) {
      table.print_json(std::cout);
    } else {
      table.print(std::cout);
    }
    return violations == 0 && total.failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_cluster: " << e.what() << "\n";
    return 2;
  }
}
