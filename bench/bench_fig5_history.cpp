// Fig. 5 reproduction: effect of truncating the request-history length on
// the byte miss ratio. The paper's finding: restricting the candidate set
// to the requests currently supported by the cache (while keeping global
// popularity/degree counters) performs essentially like the full history,
// at constant per-decision cost.
//
// Rows: history policy (full / window-K / cache-resident).
// Columns: byte miss ratio under uniform and Zipf request popularity.
#include <iostream>
#include <vector>

#include "common/harness.hpp"

using namespace fbc;
using namespace fbc::bench;

namespace {

WorkloadConfig base_workload(std::size_t jobs, Popularity popularity) {
  WorkloadConfig config;
  config.cache_bytes = 64 * MiB;
  config.num_files = 300;
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.01;
  config.num_requests = 200;
  config.min_bundle_files = 1;
  config.max_bundle_files = 8;
  config.num_jobs = jobs;
  config.popularity = popularity;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_fig5_history",
                "Fig. 5: byte miss ratio vs request-history truncation");
  add_common_options(cli);
  cli.parse(argc, argv);

  const std::size_t jobs = cli.get_u64("jobs");
  const auto seeds = make_seeds(cli.get_u64("seed"), cli.get_u64("seeds"));

  struct Variant {
    std::string label;
    std::string policy;
    std::uint64_t window;
  };
  const std::vector<Variant> variants{
      {"full-history", "optfb-full", 0},
      {"window-2000", "optfb-window", 2000},
      {"window-500", "optfb-window", 500},
      {"window-100", "optfb-window", 100},
      {"cache-resident", "optfb", 0},
  };

  TextTable table({"history", "byte_miss_uniform", "byte_miss_zipf",
                   "ci95_uniform", "ci95_zipf"});
  for (const Variant& v : variants) {
    RunSpec spec;
    spec.policy = v.policy;
    spec.history_window_jobs = v.window;
    spec.sim.cache_bytes = 64 * MiB;
    spec.sim.warmup_jobs = default_warmup(jobs);

    spec.workload = base_workload(jobs, Popularity::Uniform);
    const Aggregate uniform = run_seeds(spec, seeds);
    spec.workload = base_workload(jobs, Popularity::Zipf);
    const Aggregate zipf = run_seeds(spec, seeds);

    table.add_row({v.label, format_double(uniform.byte_miss.mean()),
                   format_double(zipf.byte_miss.mean()),
                   format_double(uniform.byte_miss.ci95_halfwidth(), 2),
                   format_double(zipf.byte_miss.ci95_halfwidth(), 2)});
  }

  std::cout << "Fig. 5: effect of varying the history length "
               "(byte miss ratio, lower is better)\n";
  emit(cli, table);
  std::cout << "Expectation (paper): truncation to cache-resident requests "
               "changes the byte miss ratio only negligibly.\n";
  return 0;
}
