// Sensitivity extension: how the OptFileBundle-vs-Landlord gap depends on
// the popularity skew. The paper evaluates the two extremes (uniform =
// alpha 0, Zipf = alpha 1); this sweep fills in the curve and extends it
// past 1, showing where bundle-aware popularity tracking pays off most.
#include <iostream>
#include <vector>

#include "common/harness.hpp"

using namespace fbc;
using namespace fbc::bench;

namespace {

WorkloadConfig base_workload(std::size_t jobs, double alpha) {
  WorkloadConfig config;
  config.cache_bytes = 64 * MiB;
  config.num_files = 300;
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.01;
  config.num_requests = 200;
  config.min_bundle_files = 1;
  config.max_bundle_files = 8;
  config.num_jobs = jobs;
  // alpha = 0 under the Zipf sampler IS the uniform distribution, so one
  // code path spans the whole sweep.
  config.popularity = Popularity::Zipf;
  config.zipf_alpha = alpha;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_alpha_sweep",
                "Byte miss ratio vs popularity skew (Zipf alpha)");
  add_common_options(cli);
  cli.parse(argc, argv);

  const std::size_t jobs = cli.get_u64("jobs");
  const auto seeds = make_seeds(cli.get_u64("seed"), cli.get_u64("seeds"));

  TextTable table({"zipf_alpha", "landlord_byte_miss", "optfb_byte_miss",
                   "improvement_pct", "optfb_request_hit"});
  for (double alpha : {0.0, 0.4, 0.8, 1.0, 1.2, 1.6}) {
    RunSpec spec;
    spec.workload = base_workload(jobs, alpha);
    spec.sim.cache_bytes = 64 * MiB;
    spec.sim.warmup_jobs = default_warmup(jobs);

    spec.policy = "landlord";
    const Aggregate landlord = run_seeds(spec, seeds);
    spec.policy = "optfb";
    const Aggregate optfb = run_seeds(spec, seeds);

    const double improvement =
        landlord.byte_miss.mean() > 0.0
            ? 100.0 * (landlord.byte_miss.mean() - optfb.byte_miss.mean()) /
                  landlord.byte_miss.mean()
            : 0.0;
    table.add_row({format_double(alpha, 3),
                   format_double(landlord.byte_miss.mean()),
                   format_double(optfb.byte_miss.mean()),
                   format_double(improvement, 3),
                   format_double(optfb.request_hit.mean())});
  }

  std::cout << "Popularity-skew sensitivity (byte miss ratio vs Zipf "
               "alpha; alpha=0 is uniform)\n";
  emit(cli, table);
  std::cout << "Expectations: both policies improve with skew; "
               "OptFileBundle leads across the whole range, with the "
               "relative gap roughly flat-to-growing in alpha.\n";
  return 0;
}
