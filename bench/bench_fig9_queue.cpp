// Fig. 9 reproduction: effect of the admission-queue length on the byte
// miss ratio. With queue length q, the simulator accumulates q jobs and
// OptFileBundle drains them in order of highest adjusted relative value
// (paper §5.3). (a) uniform popularity, (b) Zipf.
#include <iostream>
#include <vector>

#include "common/harness.hpp"

using namespace fbc;
using namespace fbc::bench;

namespace {

WorkloadConfig base_workload(std::size_t jobs, Popularity popularity) {
  WorkloadConfig config;
  config.cache_bytes = 64 * MiB;
  config.num_files = 600;
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.01;
  // A pool much larger than the queue: queued duplicates are rare under
  // uniform popularity, so any benefit of value-first scheduling comes
  // from popularity skew, as in the paper.
  config.num_requests = 2000;
  config.min_bundle_files = 1;
  config.max_bundle_files = 8;
  config.num_jobs = jobs;
  config.popularity = popularity;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_fig9_queue",
                "Fig. 9: byte miss ratio vs admission queue length");
  add_common_options(cli);
  cli.parse(argc, argv);

  const std::size_t jobs = cli.get_u64("jobs");
  const auto seeds = make_seeds(cli.get_u64("seed"), cli.get_u64("seeds"));
  const std::vector<std::size_t> queue_sweep{1, 5, 10, 25, 50, 100};

  TextTable table({"queue_length", "byte_miss_uniform", "byte_miss_zipf",
                   "hit_uniform", "hit_zipf"});
  for (std::size_t q : queue_sweep) {
    RunSpec spec;
    spec.policy = "optfb";
    spec.sim.cache_bytes = 64 * MiB;
    spec.sim.queue_length = q;
    spec.sim.warmup_jobs = default_warmup(jobs);

    spec.workload = base_workload(jobs, Popularity::Uniform);
    const Aggregate uniform = run_seeds(spec, seeds);
    spec.workload = base_workload(jobs, Popularity::Zipf);
    const Aggregate zipf = run_seeds(spec, seeds);

    table.add_row({"q" + std::to_string(q),
                   format_double(uniform.byte_miss.mean()),
                   format_double(zipf.byte_miss.mean()),
                   format_double(uniform.request_hit.mean()),
                   format_double(zipf.request_hit.mean())});
  }
  std::cout << "Fig. 9: OptFileBundle byte miss ratio vs admission queue "
               "length (a: uniform, b: zipf)\n";
  emit(cli, table);
  std::cout << "Expectation (paper): queueing helps little under uniform "
               "popularity but lowers the byte miss ratio noticeably under "
               "Zipf (q=100 best).\n\n";

  // Fairness extension (paper §5.2's lockout remark): with a SLIDING
  // queue, pure value-order scheduling can starve rare requests; aging
  // bounds the worst wait at almost no byte-miss cost.
  TextTable fairness({"scheduling", "byte_miss_zipf", "mean_wait", "max_wait"});
  for (double aging : {0.0, 0.5, 2.0}) {
    RunSpec spec;
    spec.policy = "optfb";
    spec.aging_factor = aging;
    spec.sim.cache_bytes = 64 * MiB;
    spec.sim.queue_length = 50;
    spec.sim.queue_mode = QueueMode::Sliding;
    spec.sim.warmup_jobs = default_warmup(jobs);
    spec.workload = base_workload(jobs, Popularity::Zipf);
    const Aggregate agg = run_seeds(spec, seeds);
    fairness.add_row({"sliding q50, aging=" + format_double(aging),
                      format_double(agg.byte_miss.mean()),
                      format_double(agg.mean_wait.mean()),
                      format_double(agg.max_wait.mean())});
  }
  std::cout << "Lockout avoidance under the sliding queue (Zipf):\n";
  emit(cli, fairness);
  std::cout << "Expectation: aging cuts max_wait sharply while byte_miss "
               "stays within noise.\n";
  return 0;
}
