// Fig. 6 reproduction: byte miss ratio of OptFileBundle vs Landlord for
// SMALL files (max file size = 1% of the cache), under (a) uniform and
// (b) Zipf request popularity. See common/fig67.cpp for the sweep.
#include "common/fig67.hpp"

int main(int argc, char** argv) {
  return fbc::bench::run_fig67("fig6_small_files", /*max_file_frac=*/0.01,
                               argc, argv);
}
