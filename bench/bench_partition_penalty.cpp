// Cluster extension bench: the partitioning penalty of running the SRM's
// disk cache as N independent node caches (paper §1 deployment note)
// versus one monolithic cache of the same total capacity, for both
// OptFileBundle and Landlord, under hash and round-robin placement.
#include <iostream>
#include <memory>
#include <vector>

#include "cache/simulator.hpp"
#include "common/harness.hpp"
#include "core/opt_file_bundle.hpp"
#include "grid/cluster.hpp"
#include "policies/landlord.hpp"

using namespace fbc;
using namespace fbc::bench;

namespace {

WorkloadConfig base_workload(std::size_t jobs) {
  WorkloadConfig config;
  config.seed = 1;
  config.cache_bytes = 64 * MiB;
  config.num_files = 1500;  // working set ~4x the cache: real pressure
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.005;  // small files: sub-bundles always fit
  config.num_requests = 600;
  config.min_bundle_files = 2;
  config.max_bundle_files = 8;
  config.num_jobs = jobs;
  config.popularity = Popularity::Zipf;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_cluster",
                "Monolithic cache vs cluster of independent node caches");
  add_common_options(cli);
  cli.parse(argc, argv);

  const std::size_t jobs = cli.get_u64("jobs");
  const std::uint64_t seed = cli.get_u64("seed");
  WorkloadConfig wconfig = base_workload(jobs);
  wconfig.seed = seed;
  const Workload w = generate_workload(wconfig);
  const std::size_t warmup = default_warmup(jobs);

  TextTable table({"configuration", "policy", "byte_miss", "request_hit"});

  // Monolithic reference: one cache of the full capacity.
  for (const std::string policy_name : {"optfb", "landlord"}) {
    PolicyContext context;
    context.catalog = &w.catalog;
    PolicyPtr policy = make_policy(policy_name, context);
    SimulatorConfig config{.cache_bytes = wconfig.cache_bytes,
                           .warmup_jobs = warmup};
    const CacheMetrics m =
        simulate(config, w.catalog, *policy, w.jobs).metrics;
    table.add_row({"monolithic", policy_name,
                   format_double(m.byte_miss_ratio()),
                   format_double(m.request_hit_ratio())});
  }

  // Clusters: same total bytes split over N nodes.
  for (std::size_t nodes : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    for (Placement placement : {Placement::Hash, Placement::RoundRobin}) {
      const std::string placement_name =
          placement == Placement::Hash ? "hash" : "round-robin";
      for (const std::string policy_name : {"optfb", "landlord"}) {
        ClusterConfig config;
        config.nodes = nodes;
        config.node_cache_bytes = wconfig.cache_bytes / nodes;
        config.placement = placement;
        config.warmup_jobs = warmup;
        const FileCatalog& catalog = w.catalog;
        auto factory = [&catalog, &policy_name]() -> PolicyPtr {
          if (policy_name == "optfb")
            return std::make_unique<OptFileBundlePolicy>(catalog);
          return std::make_unique<LandlordPolicy>();
        };
        ClusterSimulator cluster(config, w.catalog, factory);
        const ClusterResult result = cluster.run(w.jobs);
        table.add_row({std::to_string(nodes) + "-node/" + placement_name,
                       policy_name,
                       format_double(result.metrics.byte_miss_ratio()),
                       format_double(result.metrics.request_hit_ratio())});
      }
    }
  }

  std::cout << "Cluster partitioning penalty (total capacity fixed at "
            << format_bytes(wconfig.cache_bytes) << ", Zipf workload)\n";
  emit(cli, table);
  std::cout << "Expectations: more nodes -> higher byte miss (static "
               "partitioning wastes capacity); OptFileBundle retains its "
               "lead over Landlord at every node count.\n";
  return 0;
}
