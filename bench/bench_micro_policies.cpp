// Microbenchmark (google-benchmark): per-decision computational cost of
// the replacement policies, the §5.3 cost discussion. Each iteration
// replays a pre-generated job stream through the simulator; the reported
// time is dominated by select_victims() calls.
#include <benchmark/benchmark.h>

#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "workload/workload.hpp"

namespace {

using namespace fbc;

Workload make_workload(std::size_t num_requests, std::size_t jobs) {
  WorkloadConfig config;
  config.seed = 7;
  config.cache_bytes = 32 * MiB;
  config.num_files = 300;
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.01;
  config.num_requests = num_requests;
  config.max_bundle_files = 6;
  config.num_jobs = jobs;
  config.popularity = Popularity::Zipf;
  return generate_workload(config);
}

void run_policy_bench(benchmark::State& state, const std::string& name) {
  const std::size_t num_requests = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(num_requests, 1000);
  std::uint64_t decisions = 0;
  for (auto _ : state) {
    PolicyContext context;
    context.catalog = &w.catalog;
    context.jobs = w.jobs;
    PolicyPtr policy = make_policy(name, context);
    SimulatorConfig config{.cache_bytes = 32 * MiB};
    const SimulationResult result =
        simulate(config, w.catalog, *policy, w.jobs);
    decisions += result.decisions;
    benchmark::DoNotOptimize(result.metrics.byte_miss_ratio());
  }
  state.counters["decisions"] =
      benchmark::Counter(static_cast<double>(decisions),
                         benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.jobs.size()));
}

void BM_OptFileBundle(benchmark::State& state) {
  run_policy_bench(state, "optfb");
}
void BM_OptFileBundleBasic(benchmark::State& state) {
  run_policy_bench(state, "optfb-basic");
}
void BM_OptFileBundleFull(benchmark::State& state) {
  run_policy_bench(state, "optfb-full");
}
void BM_Landlord(benchmark::State& state) {
  run_policy_bench(state, "landlord");
}
void BM_Lru(benchmark::State& state) { run_policy_bench(state, "lru"); }
void BM_Lfu(benchmark::State& state) { run_policy_bench(state, "lfu"); }

}  // namespace

// The sweep argument is the distinct-request pool size: OptFileBundle's
// decision cost grows with the candidate count, the baselines' does not.
BENCHMARK(BM_OptFileBundle)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OptFileBundleBasic)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OptFileBundleFull)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Landlord)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lru)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lfu)->Arg(200)->Unit(benchmark::kMillisecond);
