// Per-decision cost of the incremental BundleOPTgen oracle vs the
// brute-force interval-scan reference, sweeping the trace length.
//
// Both implementations count the same deterministic cost unit -- ring-
// buffer / occupancy-vector quanta visited while scanning and committing
// reuse gaps (OptgenStats::slices_scanned). The incremental oracle's
// per-job cost is bounded by the reuse-gap lengths (clipped to the
// window), so it plateaus as the trace grows; the reference re-scans the
// whole prefix per job and grows linearly. The two must agree on every
// hit count at every sweep point; the bench aborts if they do not.
// scripts/check_bench_optgen.py gates CI on the emitted BENCH_optgen.json.
//
//   bench_optgen                   # full sweep
//   bench_optgen --smoke --json    # CI: quick sweep + JSON gate file
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/harness.hpp"
#include "core/optgen.hpp"
#include "testing/optgen_reference.hpp"

using namespace fbc;
using namespace fbc::bench;

namespace {

struct Run {
  std::uint64_t slices = 0;
  double slices_per_job = 0.0;
  double ns_per_job = 0.0;
};

struct Point {
  std::size_t jobs = 0;
  Run incremental;
  Run reference;
  OptgenStats stats;  ///< the agreed-upon hit counts
};

WorkloadConfig make_workload(std::size_t jobs, Bytes cache,
                             std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.cache_bytes = cache;
  config.num_files = 300;
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.01;
  config.num_requests = 400;
  config.min_bundle_files = 1;
  config.max_bundle_files = 8;
  config.num_jobs = jobs;
  config.popularity = Popularity::Zipf;
  return config;
}

double per_job(std::uint64_t total, std::size_t jobs) {
  return jobs == 0 ? 0.0
                   : static_cast<double>(total) / static_cast<double>(jobs);
}

std::string json_number(double v) {
  std::ostringstream oss;
  oss << v;
  return oss.str();
}

void write_run(std::ofstream& out, const char* name, const Run& run) {
  out << "\"" << name << "\": {\"slices\": " << run.slices
      << ", \"slices_per_job\": " << json_number(run.slices_per_job)
      << ", \"ns_per_job\": " << json_number(run.ns_per_job) << "}";
}

void write_json(const std::string& path, std::size_t window,
                std::span<const Point> points) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n  \"bench\": \"optgen\",\n  \"window\": " << window
      << ",\n  \"points\": [\n";
  for (std::size_t p = 0; p < points.size(); ++p) {
    const Point& point = points[p];
    out << "    {\"jobs\": " << point.jobs << ", ";
    write_run(out, "incremental", point.incremental);
    out << ", ";
    write_run(out, "reference", point.reference);
    out << ", \"opt_hits\": " << point.stats.opt_hits
        << ", \"demand_hits\": " << point.stats.demand_hits
        << ", \"reuse_hits\": " << point.stats.reuse_hits << "}";
    if (p + 1 < points.size()) out << ",";
    out << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_optgen",
                "Per-job cost of the incremental BundleOPTgen oracle vs the "
                "brute-force reference over the trace length");
  cli.add_option("cache", "cache capacity", "64MiB");
  cli.add_option("window", "oracle ring-buffer horizon, in jobs", "1024");
  cli.add_option("seed", "workload seed", "1");
  cli.add_option("out", "JSON output path (with --json)", "BENCH_optgen.json");
  cli.add_flag("smoke", "quick CI sweep (fewer, shorter traces)");
  cli.add_flag("json", "also write the machine-readable JSON gate file");
  cli.add_flag("csv", "emit CSV instead of the aligned table");

  try {
    cli.parse(argc, argv);
    const Bytes cache = parse_bytes(cli.get_string("cache"));
    const auto window =
        static_cast<std::size_t>(cli.get_u64("window"));
    const std::uint64_t seed = cli.get_u64("seed");
    const std::vector<std::size_t> sweeps =
        cli.get_flag("smoke") ? std::vector<std::size_t>{250, 1000, 4000}
                              : std::vector<std::size_t>{500, 2000, 8000};
    const OptgenConfig config{cache, window};

    std::vector<Point> points;
    for (std::size_t jobs : sweeps) {
      const Workload workload =
          generate_workload(make_workload(jobs, cache, seed));
      Point point;
      point.jobs = workload.jobs.size();

      auto start = std::chrono::steady_clock::now();
      const OptgenStats inc =
          replay_optgen(workload.catalog, workload.jobs, config);
      auto elapsed = std::chrono::steady_clock::now() - start;
      point.incremental.slices = inc.slices_scanned;
      point.incremental.slices_per_job = per_job(inc.slices_scanned, jobs);
      point.incremental.ns_per_job = per_job(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()),
          jobs);

      start = std::chrono::steady_clock::now();
      const testing::OptgenReferenceResult ref =
          testing::reference_optgen(workload.catalog, workload.jobs, config);
      elapsed = std::chrono::steady_clock::now() - start;
      point.reference.slices = ref.stats.slices_scanned;
      point.reference.slices_per_job = per_job(ref.stats.slices_scanned, jobs);
      point.reference.ns_per_job = per_job(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()),
          jobs);

      if (inc.opt_hits != ref.stats.opt_hits ||
          inc.demand_hits != ref.stats.demand_hits ||
          inc.reuse_hits != ref.stats.reuse_hits) {
        std::cerr << "bench_optgen: ORACLES DIVERGED at jobs=" << jobs
                  << " (opt " << inc.opt_hits << " vs " << ref.stats.opt_hits
                  << ", demand " << inc.demand_hits << " vs "
                  << ref.stats.demand_hits << ", reuse " << inc.reuse_hits
                  << " vs " << ref.stats.reuse_hits << ")\n";
        return 1;
      }
      point.stats = inc;
      points.push_back(point);
    }

    TextTable table({"jobs", "impl", "slices", "slices/job", "ns/job",
                     "opt", "demand", "reuse"});
    for (const Point& point : points) {
      const struct {
        const char* name;
        const Run* run;
      } rows[] = {{"incremental", &point.incremental},
                  {"reference", &point.reference}};
      for (const auto& [name, run] : rows) {
        table.add_row({std::to_string(point.jobs), name,
                       std::to_string(run->slices),
                       format_double(run->slices_per_job),
                       std::to_string(
                           static_cast<std::uint64_t>(run->ns_per_job)),
                       std::to_string(point.stats.opt_hits),
                       std::to_string(point.stats.demand_hits),
                       std::to_string(point.stats.reuse_hits)});
      }
    }
    std::cout << "BundleOPTgen per-job cost, incremental vs brute-force "
                 "reference (hit counts must match at every point)\n";
    if (cli.get_flag("csv")) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }

    if (cli.get_flag("json")) {
      write_json(cli.get_string("out"), window, points);
      std::cout << "wrote " << cli.get_string("out") << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_optgen: " << e.what() << "\n";
    return 1;
  }
}
