// Reproduces Table 1 and Table 2 of the paper: the worked example of
// Fig. 3 with seven unit-size files, six equally likely requests, and a
// cache holding three files. Also runs OptCacheSelect on the instance to
// show it recovers the optimal cache content {f1, f3, f5}.
#include <array>
#include <iostream>
#include <vector>

#include "core/opt_cache_select.hpp"
#include "core/request_history.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fbc;

/// Fig. 3's requests with 0-based file ids (paper numbering is 1-based).
std::array<Request, 6> paper_requests() {
  return {
      Request({0, 2, 4}),  // r1 = {f1, f3, f5}
      Request({1, 5, 6}),  // r2 = {f2, f6, f7}
      Request({0, 4}),     // r3 = {f1, f5}
      Request({3, 5, 6}),  // r4 = {f4, f6, f7}
      Request({2, 4}),     // r5 = {f3, f5}
      Request({4, 5, 6}),  // r6 = {f5, f6, f7}
  };
}

std::string frac_of_six(int n) {
  if (n == 0) return "0";
  if (n == 6) return "1";
  if (n % 2 == 0) return std::to_string(n / 2) + "/3";
  if (n == 3) return "1/2";
  return std::to_string(n) + "/6";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_table1_2_example",
                "Reproduces Tables 1-2 (the Fig. 3 worked example)");
  cli.add_flag("csv", "emit CSV tables");
  cli.parse(argc, argv);

  FileCatalog catalog;
  for (int i = 0; i < 7; ++i) catalog.add_file(1);
  const auto requests = paper_requests();

  RequestHistory history(catalog);
  for (const Request& r : requests) history.observe(r);

  // ---- Table 1: file request probabilities --------------------------
  TextTable table1({"file", "no_of_requests", "file_request_probability"});
  for (FileId f = 0; f < 7; ++f) {
    const int d = static_cast<int>(history.degree(f));
    table1.add_row({"f" + std::to_string(f + 1), std::to_string(d),
                    frac_of_six(d)});
  }
  std::cout << "Table 1: file request probabilities\n";
  if (cli.get_flag("csv")) {
    table1.print_csv(std::cout);
  } else {
    table1.print(std::cout);
  }
  std::cout << "\n";

  // ---- Table 2: request-hit probabilities for selected caches -------
  const std::vector<std::vector<FileId>> cache_contents{
      {4, 5, 6}, {0, 2, 4}, {0, 4, 5}, {2, 4, 5}, {0, 1, 2}};
  const std::vector<std::string> cache_labels{
      "f5,f6,f7", "f1,f3,f5", "f1,f5,f6", "f3,f5,f6", "f1,f2,f3"};

  TextTable table2({"cache_contents", "requests_supported",
                    "request_hit_probability"});
  for (std::size_t row = 0; row < cache_contents.size(); ++row) {
    Request cache_set{std::vector<FileId>(cache_contents[row])};
    std::string supported;
    int count = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      bool all = true;
      for (FileId id : requests[i].files) all = all && cache_set.contains(id);
      if (all) {
        if (!supported.empty()) supported += ",";
        supported += "r" + std::to_string(i + 1);
        ++count;
      }
    }
    if (supported.empty()) supported = "-";
    table2.add_row({cache_labels[row], supported, frac_of_six(count)});
  }
  std::cout << "Table 2: request-hit probabilities\n";
  if (cli.get_flag("csv")) {
    table2.print_csv(std::cout);
  } else {
    table2.print(std::cout);
  }
  std::cout << "\n";

  // ---- OptCacheSelect on the example ---------------------------------
  std::vector<SelectionItem> items;
  for (const Request& r : requests) {
    items.push_back(SelectionItem{&r, history.value(r)});
  }
  OptCacheSelect selector(catalog, history.degrees());
  const SelectionResult greedy =
      selector.select(items, /*capacity=*/3, SelectVariant::Resort);
  const SelectionResult exact = exact_select(items, catalog, 3);

  std::cout << "OptCacheSelect (cache of 3 unit files):\n";
  std::cout << "  greedy keeps files: ";
  for (FileId f : greedy.files) std::cout << "f" << (f + 1) << " ";
  std::cout << "(value " << format_double(greedy.total_value)
            << " of exact optimum " << format_double(exact.total_value)
            << ")\n";
  std::cout << "  max file degree d = " << history.max_degree() << "\n";
  return 0;
}
