// Drift extension bench: when request popularity is NON-stationary
// (hot analyses cool down over a campaign), how do the history-truncation
// modes of Fig. 5 rank? Stale full-history values should now hurt, while
// the window and cache-resident modes track the drift -- the flip side of
// the paper's stationary Fig. 5 result.
#include <iostream>
#include <vector>

#include "common/harness.hpp"

using namespace fbc;
using namespace fbc::bench;

namespace {

WorkloadConfig drift_workload(std::size_t jobs, std::size_t period) {
  WorkloadConfig config;
  config.cache_bytes = 64 * MiB;
  config.num_files = 300;
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.01;
  config.num_requests = 200;
  config.min_bundle_files = 1;
  config.max_bundle_files = 8;
  config.num_jobs = jobs;
  config.popularity = Popularity::Zipf;
  config.drift_period_jobs = period;
  config.drift_rotate = 20;  // a tenth of the pool turns over per period
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_drift",
                "History truncation under non-stationary popularity");
  add_common_options(cli);
  cli.parse(argc, argv);

  const std::size_t jobs = cli.get_u64("jobs");
  const auto seeds = make_seeds(cli.get_u64("seed"), cli.get_u64("seeds"));

  struct Variant {
    std::string label;
    std::string policy;
    std::uint64_t window;
  };
  const std::vector<Variant> variants{
      {"full-history", "optfb-full", 0},
      {"window-500", "optfb-window", 500},
      {"cache-resident", "optfb", 0},
      {"landlord", "landlord", 0},
  };

  TextTable table({"history", "stationary", "slow_drift", "fast_drift"});
  for (const Variant& v : variants) {
    std::vector<std::string> row{v.label};
    for (std::size_t period : {std::size_t{0}, jobs / 4, jobs / 16}) {
      RunSpec spec;
      spec.policy = v.policy;
      spec.history_window_jobs = v.window;
      spec.workload = drift_workload(jobs, period);
      spec.sim.cache_bytes = 64 * MiB;
      spec.sim.warmup_jobs = default_warmup(jobs);
      const Aggregate agg = run_seeds(spec, seeds);
      row.push_back(format_double(agg.byte_miss.mean()));
    }
    table.add_row(row);
  }

  std::cout << "Byte miss ratio under popularity drift (Zipf, rank rotation "
               "of 20/200 pool entries per period)\n";
  emit(cli, table);
  std::cout << "Expectations: drift raises the miss ratio of every "
               "popularity-history mode; the sliding window adapts best "
               "among them, reversing the stationary Fig. 5 tie. Under "
               "fast drift the purely recency-based Landlord closes the "
               "gap or overtakes -- popularity history is only an asset "
               "when popularity is (quasi-)stationary, a boundary of the "
               "paper's result worth knowing.\n";
  return 0;
}
