#!/usr/bin/env python3
"""Perf-regression gate for the batched serving hot path.

Runs the fbcload loopback benchmark in interleaved pairs -- the legacy
baseline stack (reference engine, serial admission, unsharded lease
table, no fetch coalescing, unbuffered wire loop) against the batched
stack (incremental engine, batched admission, sharded leases, coalesced
fetches, buffered frame reader) -- and fails when:

  * any run drops or fails a request (ok != requests or failed != 0);
  * the batched stack's best-of-N throughput falls below --ratio-floor
    times the baseline's best-of-N (the PR's >= 2x headline is measured
    on a quiet box; the CI floor is deliberately lower so shared-runner
    noise cannot flake the gate, while a real regression to parity still
    trips it);
  * the batched stack's best-case p99 latency regresses past
    --p99-slack times the baseline's best-case p99.

Interleaving (B,O,B,O,...) makes slow-machine noise hit both legs alike;
best-of-N per leg discards transient stalls rather than averaging them
in. With --out the measured legs are written as BENCH_serving.json for
the README numbers.

Usage: check_bench_serving.py [--fbcload=build/tools/fbcload] [options]
"""

import argparse
import json
import subprocess
import sys

BASELINE_FLAGS = [
    "--engine=reference",
    "--admission-batch=1",
    "--lease-shards=1",
    "--no-coalesce",
    "--legacy-wire",
    "--no-pipeline",
]


def run_fbcload(args, extra_flags):
    cmd = [
        args.fbcload,
        "--inline",
        "--json",
        f"--connections={args.connections}",
        f"--requests={args.requests}",
        f"--scenario={args.scenario}",
        f"--cache={args.cache}",
        f"--policy={args.policy}",
    ] + extra_flags
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"FAIL: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        sys.stderr.write(proc.stderr)
        sys.exit(1)
    runs = json.loads(proc.stdout)
    if not isinstance(runs, list) or len(runs) != 1:
        print(f"FAIL: unexpected fbcload JSON shape: {proc.stdout[:200]}",
              file=sys.stderr)
        sys.exit(1)
    return runs[0]


def check_run(run, label, failures):
    if run["failed"] != 0:
        failures.append(f"{label}: {run['failed']} failed request(s)")
    if run["ok"] != run["requests"]:
        failures.append(
            f"{label}: ok={run['ok']} != requests={run['requests']}")


def main():
    parser = argparse.ArgumentParser(
        description="serving-throughput regression gate")
    parser.add_argument("--fbcload", default="build/tools/fbcload")
    parser.add_argument("--pairs", type=int, default=3,
                        help="interleaved baseline/batched pairs (best-of)")
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--requests", type=int, default=8000)
    parser.add_argument("--scenario", default="henp")
    parser.add_argument("--cache", default="2GiB")
    parser.add_argument("--policy", default="optfb")
    parser.add_argument("--ratio-floor", type=float, default=1.5,
                        help="min batched/baseline best-of-N throughput")
    parser.add_argument("--p99-slack", type=float, default=1.25,
                        help="max batched/baseline best-case p99 ratio")
    parser.add_argument("--out", default="",
                        help="also write the measured legs as JSON here")
    args = parser.parse_args()

    failures = []
    baseline_runs, batched_runs = [], []
    for pair in range(args.pairs):
        base = run_fbcload(args, BASELINE_FLAGS)
        opt = run_fbcload(args, [])
        check_run(base, f"baseline[{pair}]", failures)
        check_run(opt, f"batched[{pair}]", failures)
        baseline_runs.append(base)
        batched_runs.append(opt)
        print(f"pair {pair}: baseline {base['throughput_rps']:.0f} rps "
              f"(p99 {base['p99_ms']:.3f} ms) | "
              f"batched {opt['throughput_rps']:.0f} rps "
              f"(p99 {opt['p99_ms']:.3f} ms)")

    best_base = max(r["throughput_rps"] for r in baseline_runs)
    best_opt = max(r["throughput_rps"] for r in batched_runs)
    ratio = best_opt / best_base if best_base > 0 else float("inf")
    # Best-case tails: min-of-N p99 per leg, so one noisy run on either
    # side cannot decide the comparison.
    p99_base = min(r["p99_ms"] for r in baseline_runs)
    p99_opt = min(r["p99_ms"] for r in batched_runs)

    print(f"best-of-{args.pairs}: baseline {best_base:.0f} rps, "
          f"batched {best_opt:.0f} rps, ratio {ratio:.2f}x "
          f"(floor {args.ratio_floor:.2f}x)")
    print(f"best-case p99: baseline {p99_base:.3f} ms, "
          f"batched {p99_opt:.3f} ms (slack {args.p99_slack:.2f}x)")

    if ratio < args.ratio_floor:
        failures.append(
            f"throughput ratio {ratio:.2f}x below floor "
            f"{args.ratio_floor:.2f}x "
            f"({best_opt:.0f} vs {best_base:.0f} rps)")
    if p99_opt > p99_base * args.p99_slack:
        failures.append(
            f"p99 regressed: batched {p99_opt:.3f} ms vs baseline "
            f"{p99_base:.3f} ms (slack {args.p99_slack:.2f}x)")

    if args.out:
        report = {
            "benchmark": "serving",
            "schema": 2,
            "scenario": args.scenario,
            "policy": args.policy,
            "connections": args.connections,
            "requests": args.requests,
            "pairs": args.pairs,
            "ratio_best_of_n": round(ratio, 3),
            "baseline_flags": BASELINE_FLAGS,
            "baseline_runs": baseline_runs,
            "batched_runs": batched_runs,
        }
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serving perf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
