#!/usr/bin/env python3
"""Multi-process shard-failure smoke for fbcgrid --spawn-remote.

Boots a real fleet -- fbcgrid forks four fbcd shard daemons and routes
to them over the wire -- then drives it with fbcload while one shard
daemon is SIGKILLed mid-run. The run passes only if

  * fbcload sees zero client-visible failures (exit 0) both during the
    kill and on a follow-up load against the degraded fleet,
  * the router actually rerouted around the dead shard
    (grid.acquire.rerouted > 0 in fbcctl metrics),
  * fbcgrid itself shuts down clean (exit 0: audits pass, the killed
    child is tolerated, the surviving children exit 0).

Usage: smoke_multiprocess.py [--build=build] [--requests=2000]
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import time

SHARDS = 4
SCENARIO = "henp"
CACHE = "2GiB"


def fail(msg):
    print(f"smoke_multiprocess: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def read_startup(grid):
    """Scrape child pids/ports and the router port from fbcgrid stdout."""
    children = []  # (shard, pid, port)
    router_port = None
    child_re = re.compile(r"fbcgrid: shard (\d+) pid=(\d+) port=(\d+)")
    listen_re = re.compile(r"fbcgrid: listening on 127\.0\.0\.1:(\d+)")
    deadline = time.time() + 30
    while time.time() < deadline:
        line = grid.stdout.readline()
        if not line:
            fail("fbcgrid exited before printing its listening line")
        sys.stdout.write(line)
        m = child_re.match(line)
        if m:
            children.append((int(m.group(1)), int(m.group(2)), int(m.group(3))))
            continue
        m = listen_re.match(line)
        if m:
            router_port = int(m.group(1))
            return children, router_port
    fail("timed out waiting for fbcgrid startup lines")


def run_load(build, port, requests, connections=8):
    return subprocess.run(
        [
            f"{build}/tools/fbcload",
            f"--port={port}",
            f"--scenario={SCENARIO}",
            f"--cache={CACHE}",
            "--time-scale=0",
            "-c",
            str(connections),
            "-n",
            str(requests),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def rerouted_count(build, port):
    out = subprocess.run(
        [f"{build}/tools/fbcctl", "metrics", f"--port={port}"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        check=True,
    ).stdout
    m = re.search(r"grid\.acquire\.rerouted\s*\|?\s*(\d+)", out)
    return int(m.group(1)) if m else 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build", default="build")
    parser.add_argument("--requests", type=int, default=2000)
    args = parser.parse_args()
    build = args.build

    grid = subprocess.Popen(
        [
            f"{build}/tools/fbcgrid",
            "--spawn-remote",
            f"--shards={SHARDS}",
            "--port=0",
            f"--scenario={SCENARIO}",
            f"--cache={CACHE}",
            "--time-scale=0",
            "--workers=8",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        children, router_port = read_startup(grid)
        if len(children) != SHARDS:
            fail(f"expected {SHARDS} shard children, saw {len(children)}")
        print(f"smoke_multiprocess: router on {router_port}, "
              f"children {[(c[1], c[2]) for c in children]}")

        # Load with a mid-run kill: give fbcload a head start, then
        # SIGKILL one shard daemon while requests are (likely) still in
        # flight. Client-visible failures are a hard fail either way.
        load = subprocess.Popen(
            [
                f"{build}/tools/fbcload",
                f"--port={router_port}",
                f"--scenario={SCENARIO}",
                f"--cache={CACHE}",
                "--time-scale=0",
                "--hold-ms=1",
                "-c", "8",
                "-n", str(args.requests),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        time.sleep(0.3)
        victim_shard, victim_pid, _ = children[1]
        print(f"smoke_multiprocess: SIGKILL shard {victim_shard} "
              f"(pid {victim_pid})")
        os.kill(victim_pid, signal.SIGKILL)
        out, _ = load.communicate(timeout=120)
        sys.stdout.write(out)
        if load.returncode != 0:
            fail(f"fbcload (kill mid-run) exited {load.returncode}")

        # A second load against the degraded fleet guarantees post-kill
        # traffic even if the first run finished before the kill landed,
        # and proves the grid keeps serving with a shard gone.
        second = run_load(build, router_port, args.requests)
        sys.stdout.write(second.stdout)
        if second.returncode != 0:
            fail(f"fbcload (degraded fleet) exited {second.returncode}")

        rerouted = rerouted_count(build, router_port)
        print(f"smoke_multiprocess: grid.acquire.rerouted = {rerouted}")
        if rerouted == 0:
            fail("router never rerouted around the killed shard")

        grid.send_signal(signal.SIGTERM)
        out, _ = grid.communicate(timeout=60)
        sys.stdout.write(out)
        if grid.returncode != 0:
            fail(f"fbcgrid exited {grid.returncode}")
        print("smoke_multiprocess: PASS")
    finally:
        if grid.poll() is None:
            grid.kill()
            grid.wait()


if __name__ == "__main__":
    main()
