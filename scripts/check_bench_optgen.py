#!/usr/bin/env python3
"""Perf-regression gate for the incremental BundleOPTgen oracle.

Reads the JSON emitted by `bench_optgen --json` and fails when:

* the incremental oracle's per-job slice count grows super-linearly --
  its growth factor between the smallest and largest sweep point must be
  at most half the trace-length growth factor (the cost is bounded by
  reuse-gap lengths, clipped to the window, so it must plateau);
* the brute-force reference does not cost more per job than the
  incremental oracle at the largest sweep point (the reference re-scans
  the whole prefix per job: if it is ever cheaper, the counters are
  mislabeled or the file is stale);
* any point reports zero slices (an empty or degenerate sweep).

Usage: check_bench_optgen.py [BENCH_optgen.json]
"""

import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_optgen.json"
    with open(path) as f:
        data = json.load(f)

    points = sorted(data.get("points", []), key=lambda p: p["jobs"])
    if len(points) < 2:
        print(f"{path}: need at least two sweep points", file=sys.stderr)
        return 1

    failures = []
    for point in points:
        if point["incremental"]["slices"] == 0:
            failures.append(f"jobs={point['jobs']}: zero incremental slices")
        if point["reference"]["slices"] == 0:
            failures.append(f"jobs={point['jobs']}: zero reference slices")

    small, large = points[0], points[-1]
    job_growth = large["jobs"] / small["jobs"]
    inc_small = small["incremental"]["slices_per_job"]
    inc_large = large["incremental"]["slices_per_job"]
    inc_growth = inc_large / inc_small if inc_small > 0 else float("inf")
    verdict = "ok" if inc_growth <= 0.5 * job_growth else "FAIL"
    print(f"incremental slices/job: {inc_small:.1f} @ {small['jobs']} jobs -> "
          f"{inc_large:.1f} @ {large['jobs']} jobs "
          f"(growth {inc_growth:.2f}x vs jobs {job_growth:.2f}x) [{verdict}]")
    if inc_growth > 0.5 * job_growth:
        failures.append(
            f"incremental slices/job grew {inc_growth:.2f}x over a "
            f"{job_growth:.2f}x longer trace -- not sub-linear")

    ref_large = large["reference"]["slices_per_job"]
    verdict = "ok" if ref_large > inc_large else "FAIL"
    print(f"largest point: reference {ref_large:.1f} slices/job vs "
          f"incremental {inc_large:.1f} [{verdict}]")
    if ref_large <= inc_large:
        failures.append(
            f"reference slices/job ({ref_large:.1f}) not above the "
            f"incremental oracle ({inc_large:.1f}) at the largest point")

    if failures:
        for failure in failures:
            print(f"check_bench_optgen: {failure}", file=sys.stderr)
        return 1
    print("check_bench_optgen: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
