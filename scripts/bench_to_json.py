#!/usr/bin/env python3
"""Normalizes bench outputs into the standard BENCH_*.json document.

Every bench (and fbcload) can already emit a machine-readable table: the
harness's --json flag prints a JSON array of row objects, and --csv prints
the same rows as CSV. This script wraps one or more such outputs into the
checked-in BENCH_<name>.json format:

    {
      "benchmark": "<name>",
      "schema": 1,
      "runs": [ {<row>}, ... ]
    }

Inputs may be files or "-" for stdin; each may be a JSON array (preferred)
or CSV with a header line. Rows from all inputs are concatenated in order.
An optional --label key=value is attached to every row of the *following*
input, so several differently-configured runs can be merged:

    fbcload --inline --json --scenario=henp  > henp.json
    fbcload --inline --json --scenario=climate > climate.json
    bench_to_json.py --name serving henp.json climate.json \
        --out BENCH_serving.json

CSV cells that parse as numbers are emitted as numbers, mirroring
TextTable::print_json.
"""

import argparse
import csv
import io
import json
import sys


def parse_rows(text, source):
    """Returns a list of row dicts from JSON-array or CSV text.

    Bench output interleaves human narration (titles, expectation notes)
    with one or more tables; every JSON array / CSV table found is
    concatenated and everything else is ignored.
    """
    rows = extract_json_arrays(text)
    if rows is not None:
        return rows
    rows = extract_csv_rows(text)
    if rows is None:
        raise ValueError(f"{source}: no JSON array or CSV table found")
    return rows


def extract_json_arrays(text):
    """All line-starting JSON arrays of objects in `text`, or None."""
    decoder = json.JSONDecoder()
    rows = []
    found = False
    pos = 0
    while True:
        start = text.find("[", pos)
        if start == -1:
            break
        line_start = text.rfind("\n", 0, start) + 1
        if text[line_start:start].strip():  # mid-line '[': not a table
            pos = start + 1
            continue
        try:
            value, end = decoder.raw_decode(text, start)
        except ValueError:
            pos = start + 1
            continue
        if isinstance(value, list) and value and all(
                isinstance(row, dict) for row in value):
            rows.extend(value)
            found = True
        pos = max(end, start + 1)
    return rows if found else None


def extract_csv_rows(text):
    """Rows of every CSV table in `text` (blocks of comma lines), or None.

    Within a block, leading lines whose parsed width differs from the
    data rows' width are narration that happens to contain commas.
    """
    rows = []
    block = []
    for line in text.splitlines() + [""]:
        if "," in line:
            block.append(line)
            continue
        if block:
            parsed = [next(csv.reader([b])) for b in block]
            width = len(parsed[-1])
            while parsed and len(parsed[0]) != width:
                parsed.pop(0)
            if len(parsed) >= 2:
                header = parsed[0]
                rows.extend({key: coerce(cell)
                             for key, cell in zip(header, row)}
                            for row in parsed[1:])
            block = []
    return rows or None


def parse_histogram(cell):
    """Parses a log2-bucket histogram cell into {bucket_index: count}.

    fbcload --hist and fbcsim --obs emit raw bucket columns as
    "idx:count|idx:count" (e.g. "0:3|7:12|20:1"). Returns None when the
    cell is not one.
    """
    if not isinstance(cell, str) or ":" not in cell:
        return None
    buckets = {}
    for part in cell.split("|"):
        index, sep, count = part.partition(":")
        if not sep or not index.isdigit() or not count.isdigit():
            return None
        buckets[int(index)] = int(count)
    return buckets


def coerce(cell):
    """Numeric cells become numbers, like TextTable::print_json;
    histogram bucket cells become {bucket_index: count} dicts."""
    buckets = parse_histogram(cell)
    if buckets is not None:
        return buckets
    try:
        as_float = float(cell)
    except ValueError:
        return cell
    if as_float.is_integer() and "." not in cell and "e" not in cell.lower():
        return int(as_float)
    return as_float


def main() -> int:
    parser = argparse.ArgumentParser(
        description="wrap bench --json/--csv outputs into BENCH_<name>.json")
    parser.add_argument("--name", required=True,
                        help="benchmark name recorded in the document")
    parser.add_argument("--out", default="-",
                        help="output path (default stdout)")
    parser.add_argument("--label", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="attach key=value to rows of the next input; "
                             "repeatable, position-sensitive")
    parser.add_argument("inputs", nargs="+",
                        help="bench output files, or - for stdin")
    args = parser.parse_args()

    # --label flags apply to the input that follows them on the command
    # line; argparse loses interleaving, so recover it from sys.argv.
    labels_by_input = {}
    pending = {}
    position = 0
    argv = sys.argv[1:]
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--label" or arg.startswith("--label="):
            raw = arg.split("=", 1)[1] if "=" in arg else argv[i + 1]
            i += 1 if "=" in arg else 2
            key, _, value = raw.partition("=")
            pending[key] = coerce(value)
            continue
        if arg in ("--name", "--out"):
            i += 2
            continue
        if arg.startswith("--"):
            i += 1
            continue
        labels_by_input[position] = pending
        pending = {}
        position += 1
        i += 1

    runs = []
    for index, path in enumerate(args.inputs):
        text = (sys.stdin.read() if path == "-"
                else open(path, encoding="utf-8").read())
        rows = parse_rows(text, path)
        extra = labels_by_input.get(index, {})
        for row in rows:
            for key, value in row.items():
                buckets = parse_histogram(value)
                if buckets is not None:
                    row[key] = buckets
            runs.append({**extra, **row})

    document = {"benchmark": args.name, "schema": 1, "runs": runs}
    rendered = json.dumps(document, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(rendered)
    else:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())
