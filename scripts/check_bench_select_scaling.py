#!/usr/bin/env python3
"""Perf-regression gate for the incremental selection engine.

Reads the JSON emitted by `bench_select_scaling --json` and fails when the
incremental engine's per-miss rescored-entry count exceeds the reference
engine's scanned-entry count at the largest sweep point of any policy --
i.e. when the dirty-tracking engine has degraded to (or past) the cost of
a full from-scratch rescore. Also re-checks that both engines reported the
same byte-miss ratio and decision count at every point (the bench itself
aborts on divergence; this guards against a stale or hand-edited file).

Usage: check_bench_select_scaling.py [BENCH_select_scaling.json]
"""

import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_select_scaling.json"
    with open(path) as f:
        data = json.load(f)

    points = data.get("points", [])
    if not points:
        print(f"{path}: no sweep points", file=sys.stderr)
        return 1

    failures = []
    for point in points:
        ref = point["engines"]["reference"]
        inc = point["engines"]["incremental"]
        where = (f"policy={point['policy']} history={point['history_entries']} "
                 f"cache={point['cache_mib']}MiB")
        if ref["byte_miss"] != inc["byte_miss"]:
            failures.append(f"{where}: byte_miss diverged "
                            f"({ref['byte_miss']} vs {inc['byte_miss']})")
        if ref["decisions"] != inc["decisions"]:
            failures.append(f"{where}: decision count diverged "
                            f"({ref['decisions']} vs {inc['decisions']})")

    # The gate proper: at each policy's largest sweep point the incremental
    # engine must do less rescoring work than the reference does scanning.
    by_policy = {}
    for point in points:
        key = point["policy"]
        best = by_policy.get(key)
        if (best is None
                or (point["history_entries"], point["cache_mib"])
                > (best["history_entries"], best["cache_mib"])):
            by_policy[key] = point

    for policy, point in sorted(by_policy.items()):
        ref = point["engines"]["reference"]
        inc = point["engines"]["incremental"]
        rescored = inc["rescored_per_decision"]
        scanned = ref["scanned_per_decision"]
        verdict = "ok" if rescored <= scanned else "FAIL"
        print(f"{policy} @ history={point['history_entries']} "
              f"cache={point['cache_mib']}MiB: incremental rescored/dec "
              f"{rescored:.1f} vs reference scanned/dec {scanned:.1f} "
              f"[{verdict}]")
        if rescored > scanned:
            failures.append(
                f"policy={policy}: incremental rescored/dec {rescored:.1f} "
                f"exceeds reference scanned/dec {scanned:.1f} at the largest "
                f"sweep point")

    if failures:
        for failure in failures:
            print(f"check_bench_select_scaling: {failure}", file=sys.stderr)
        return 1
    print("check_bench_select_scaling: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
