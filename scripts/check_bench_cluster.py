#!/usr/bin/env python3
"""Scaling gate for the sharded serving cluster.

Runs bench_cluster (the in-process ClusterRouter scaling bench) in
interleaved N=1 / N=4 pairs -- identical flags except --shards -- and
fails when:

  * any run drops or fails a request (ok != requests or failed != 0);
  * the N=4 cluster's best-of-N aggregate throughput falls below
    --ratio-floor times the single-shard best-of-N. The floor is 2.5x:
    four shards mean four independent admission locks and four policy
    instances evicting in parallel, so anything near parity signals the
    router serializing its shards again.

Interleaving (1,4,1,4,...) makes slow-machine noise hit both legs alike;
best-of-N per leg discards transient stalls rather than averaging them
in. With --out the measured legs are written as BENCH_cluster.json for
the README numbers.

Usage: check_bench_cluster.py [--bench=build/bench/bench_cluster] [options]
"""

import argparse
import json
import subprocess
import sys


def run_bench(args, shards):
    cmd = [
        args.bench,
        "--json",
        f"--shards={shards}",
        f"--connections={args.connections}",
        f"--requests={args.requests}",
        f"--cache={args.cache}",
        f"--policy={args.policy}",
        f"--placement={args.placement}",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"FAIL: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        sys.stderr.write(proc.stderr)
        sys.exit(1)
    runs = json.loads(proc.stdout)
    if not isinstance(runs, list) or len(runs) != 1:
        print(f"FAIL: unexpected bench_cluster JSON shape: "
              f"{proc.stdout[:200]}", file=sys.stderr)
        sys.exit(1)
    return runs[0]


def check_run(run, label, failures):
    if run["failed"] != 0:
        failures.append(f"{label}: {run['failed']} failed request(s)")
    if run["ok"] != run["requests"]:
        failures.append(
            f"{label}: ok={run['ok']} != requests={run['requests']}")


def main():
    parser = argparse.ArgumentParser(
        description="cluster-scaling regression gate")
    parser.add_argument("--bench", default="build/bench/bench_cluster")
    parser.add_argument("--pairs", type=int, default=3,
                        help="interleaved N=1/N=4 pairs (best-of)")
    parser.add_argument("--shards", type=int, default=4,
                        help="scaled-leg shard count")
    parser.add_argument("--connections", type=int, default=16)
    parser.add_argument("--requests", type=int, default=40000)
    parser.add_argument("--cache", default="4194304",
                        help="per-shard cache bytes")
    parser.add_argument("--policy", default="optfb")
    parser.add_argument("--placement", default="affinity")
    parser.add_argument("--ratio-floor", type=float, default=2.5,
                        help="min N-shard/single-shard best-of-N throughput")
    parser.add_argument("--out", default="",
                        help="also write the measured legs as JSON here")
    args = parser.parse_args()

    failures = []
    single_runs, sharded_runs = [], []
    for pair in range(args.pairs):
        single = run_bench(args, 1)
        sharded = run_bench(args, args.shards)
        check_run(single, f"single[{pair}]", failures)
        check_run(sharded, f"sharded[{pair}]", failures)
        single_runs.append(single)
        sharded_runs.append(sharded)
        print(f"pair {pair}: N=1 {single['throughput_rps']:.0f} rps "
              f"(p99 {single['p99_ms']:.3f} ms) | "
              f"N={args.shards} {sharded['throughput_rps']:.0f} rps "
              f"(p99 {sharded['p99_ms']:.3f} ms)")

    best_single = max(r["throughput_rps"] for r in single_runs)
    best_sharded = max(r["throughput_rps"] for r in sharded_runs)
    ratio = best_sharded / best_single if best_single > 0 else float("inf")

    print(f"best-of-{args.pairs}: N=1 {best_single:.0f} rps, "
          f"N={args.shards} {best_sharded:.0f} rps, ratio {ratio:.2f}x "
          f"(floor {args.ratio_floor:.2f}x)")

    if ratio < args.ratio_floor:
        failures.append(
            f"scaling ratio {ratio:.2f}x below floor "
            f"{args.ratio_floor:.2f}x "
            f"({best_sharded:.0f} vs {best_single:.0f} rps)")

    if args.out:
        report = {
            "benchmark": "cluster",
            "schema": 1,
            "shards": args.shards,
            "placement": args.placement,
            "policy": args.policy,
            "connections": args.connections,
            "requests": args.requests,
            "pairs": args.pairs,
            "ratio_best_of_n": round(ratio, 3),
            "single_runs": single_runs,
            "sharded_runs": sharded_runs,
        }
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("cluster scaling gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
